"""Chaos subsystem tests: schedules, injectors, the no-lost-jobs checker,
and the acceptance suite (every named scenario completes with zero lost
jobs, zero duplicate completions, and a byte-identical replay)."""

import pytest

from repro.analysis.chaos import SCHEDULES, replay_identical, run_chaos
from repro.core import (
    CondorSystem,
    Job,
    StationSpec,
)
from repro.faults import (
    ChaosInjector,
    ChaosSchedule,
    CrashCoordinator,
    CrashInjector,
    CrashMidTransfer,
    CrashStation,
    FaultAction,
    LossBurst,
    NoLostJobsChecker,
    NoLostJobsViolation,
    Partition,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import HOUR, MINUTE, RandomStream, Simulation, SimulationError
from repro.sim.randomness import Constant
from repro.telemetry import kinds


def build_system(hosts=2, config=None):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0)]
    for i in range(hosts):
        specs.append(StationSpec(f"h{i}", owner_model=NeverActiveOwner()))
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    return sim, system


class TestFaultActionValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            CrashStation("h0", at=-1.0, duration=10.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SimulationError):
            CrashStation("h0", at=0.0, duration=0.0)

    @pytest.mark.parametrize("make", [
        lambda: CrashStation("h0", at=0.0, duration=None),
        lambda: CrashCoordinator(at=0.0, duration=None),
        lambda: Partition(("h0",), at=0.0, duration=None),
        lambda: LossBurst(0.5, at=0.0, duration=None),
        lambda: CrashMidTransfer(at=0.0, duration=None),
    ])
    def test_every_repairable_fault_requires_a_duration(self, make):
        with pytest.raises(SimulationError):
            make()

    def test_partition_island_must_be_nonempty(self):
        with pytest.raises(SimulationError):
            Partition((), at=0.0, duration=10.0)

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
    def test_loss_burst_probability_range(self, probability):
        with pytest.raises(SimulationError):
            LossBurst(probability, at=0.0, duration=10.0)

    def test_crash_mid_transfer_knobs(self):
        with pytest.raises(SimulationError):
            CrashMidTransfer(at=0.0, duration=10.0, downtime=0.0)
        with pytest.raises(SimulationError):
            CrashMidTransfer(at=0.0, duration=10.0, count=0)


class TestChaosSchedule:
    def test_horizon_covers_latest_repair(self):
        schedule = ChaosSchedule("s", [
            CrashStation("h0", at=100.0, duration=50.0),
            Partition(("h1",), at=120.0, duration=10.0),
        ])
        assert schedule.horizon() == 150.0
        assert len(schedule) == 2

    def test_empty_schedule_rejected(self):
        with pytest.raises(SimulationError):
            ChaosSchedule("s", [])

    def test_non_action_rejected(self):
        with pytest.raises(SimulationError):
            ChaosSchedule("s", ["crash h0 please"])

    def test_base_action_inject_is_abstract(self):
        action = FaultAction(at=0.0)
        with pytest.raises(NotImplementedError):
            action.inject(None)


class TestChaosInjector:
    def test_crash_window_matches_schedule(self):
        sim, system = build_system()
        schedule = ChaosSchedule("window", [
            CrashStation("h0", at=100.0, duration=50.0),
        ])
        injector = ChaosInjector(sim, system, schedule)
        observed = {}

        def probe(label):
            observed[label] = system.scheduler("h0").crashed

        sim.schedule_at(99.0, probe, "before")
        sim.schedule_at(120.0, probe, "inside")
        sim.schedule_at(151.0, probe, "after")
        system.start()
        injector.start()
        sim.run(until=200.0)
        assert observed == {"before": False, "inside": True, "after": False}
        assert injector.injected == 1
        assert injector.cleared == 1

    def test_faults_telemetered_through_the_bus(self):
        sim, system = build_system()
        schedule = ChaosSchedule("telemetry", [
            CrashStation("h0", at=10.0, duration=5.0),
            Partition(("h1",), at=30.0, duration=5.0),
        ])
        events = []
        system.bus.subscribe_event(kinds.FAULT_INJECTED, events.append)
        system.bus.subscribe_event(kinds.FAULT_CLEARED, events.append)
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        sim.run(until=60.0)
        assert [(e.kind, e.payload["fault"]) for e in events] == [
            (kinds.FAULT_INJECTED, "station_crash"),
            (kinds.FAULT_CLEARED, "station_crash"),
            (kinds.FAULT_INJECTED, "partition"),
            (kinds.FAULT_CLEARED, "partition"),
        ]
        assert events[0].payload["station"] == "h0"
        assert events[2].payload["island"] == ["h1"]

    def test_start_is_idempotent(self):
        sim, system = build_system()
        schedule = ChaosSchedule("idem", [
            CrashStation("h0", at=10.0, duration=5.0),
        ])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        injector.start()
        sim.run(until=30.0)
        assert injector.injected == 1


class TestCrashInjectorExclusion:
    def wrap_crashes(self, system):
        crashed = []
        for name, scheduler in system.schedulers.items():
            original = scheduler.crash

            def record(_name=name, _original=original):
                crashed.append(_name)
                _original()

            scheduler.crash = record
        return crashed

    def test_excluding_every_station_is_an_error(self):
        sim, system = build_system(hosts=1)
        injector = CrashInjector(
            sim, system, RandomStream(1, "f"),
            uptime_dist=Constant(HOUR), downtime_dist=Constant(MINUTE),
            exclude=("home", "h0"),
        )
        with pytest.raises(SimulationError):
            injector.start()

    def test_excluded_station_is_never_crashed(self):
        sim, system = build_system(hosts=2)
        crashed = self.wrap_crashes(system)
        injector = CrashInjector(
            sim, system, RandomStream(2, "f"),
            uptime_dist=Constant(2 * HOUR),
            downtime_dist=Constant(10 * MINUTE),
            exclude=("home",),
        )
        system.start()
        injector.start()
        sim.run(until=24 * HOUR)
        assert injector.crashes > 0
        assert "home" not in crashed
        assert set(crashed) == {"h0", "h1"}


class TestNoLostJobsChecker:
    def make_job(self, demand=100.0):
        return Job(user="u", home="home", demand_seconds=demand)

    def test_duplicate_completion_detected(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        system.bus.publish(kinds.JOB_COMPLETED, job=job)
        system.bus.publish(kinds.JOB_COMPLETED, job=job)
        assert not checker.ok
        assert "completed 2 times" in checker.violations[0]
        with pytest.raises(NoLostJobsViolation):
            checker.check_final(require_all_complete=False)

    def test_checkpoint_regression_detected(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.checkpointed_progress = 60.0
        system.bus.publish(kinds.JOB_VACATED, job=job, station="h0")
        job.checkpointed_progress = 40.0
        system.bus.publish(kinds.JOB_RESUMED, job=job, station="h0")
        assert not checker.ok
        assert "checkpoint regressed" in checker.violations[0]

    def test_never_completed_job_flagged_at_final(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        system.bus.publish(kinds.JOB_SUBMITTED, job=self.make_job())
        assert checker.ok                       # nothing wrong live
        with pytest.raises(NoLostJobsViolation, match="never completed"):
            checker.check_final()
        # Runs cut off mid-flight may relax the completion requirement.
        assert checker.check_final(require_all_complete=False) == 1

    def test_removed_job_may_never_complete(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        system.bus.publish(kinds.JOB_REMOVED, job=job)
        assert checker.check_final() == 1


# ---------------------------------------------------------------------------
# The acceptance suite: every named scenario, end to end.

@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_chaos_scenario_no_lost_jobs_and_byte_identical_replay(name):
    identical, run = replay_identical(name, seed=7)
    # strict=True inside run_chaos already raised on any invariant or
    # no-lost-jobs violation; assert the headline outcomes explicitly.
    assert identical, f"{name}: replay trace differs"
    assert all(job.finished for job in run.jobs)
    counts = run.system.bus.counts
    assert counts[kinds.JOB_COMPLETED] == len(run.jobs)   # zero duplicates
    assert run.injector.injected > 0
    assert run.no_lost.ok
    assert run.trace_lines, "chaos run produced no telemetry"


def test_chaos_seed_changes_the_trace():
    a = run_chaos("station-crashes", seed=7)
    b = run_chaos("station-crashes", seed=8)
    assert a.trace_bytes != b.trace_bytes


def test_unknown_schedule_name_rejected():
    with pytest.raises(SimulationError, match="unknown chaos schedule"):
        run_chaos("no-such-scenario")


def test_strict_run_requires_injected_faults():
    # A schedule whose only action lands beyond the horizon injects
    # nothing; strict mode refuses to call that a chaos run.
    SCHEDULES["_noop"] = lambda: ChaosSchedule("_noop", [
        CrashStation("h0", at=30 * 24 * HOUR, duration=MINUTE),
    ])
    try:
        with pytest.raises(SimulationError, match="injected no faults"):
            run_chaos("_noop")
    finally:
        del SCHEDULES["_noop"]


def test_loss_burst_restores_prior_rate():
    from repro.net import Network

    sim = Simulation()
    network = Network(sim, loss_stream=RandomStream(4, "loss"))
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0),
             StationSpec("h0", owner_model=NeverActiveOwner())]
    system = CondorSystem(sim, specs, network=network,
                          coordinator_host="home")
    burst = LossBurst(0.9, at=5.0, duration=5.0)
    schedule = ChaosSchedule("burst", [burst])
    injector = ChaosInjector(sim, system, schedule)
    system.start()
    injector.start()
    rates = {}
    sim.schedule_at(7.0, lambda: rates.update(
        inside=system.network.loss_probability))
    sim.run(until=20.0)
    assert rates["inside"] == 0.9
    assert system.network.loss_probability == 0.0
