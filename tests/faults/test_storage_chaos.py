"""Storage chaos tests: the fault actions, the extended no-lost-jobs
checker (verified-checkpoint floor, poisoned resume points), and the
storage scenarios' specific outcomes (the generic zero-lost +
byte-identical-replay acceptance runs in test_chaos.py)."""

import json

import pytest

from repro.analysis.chaos import SCENARIO_CONFIGS, SUITES, run_chaos
from repro.core import CondorSystem, Job, StationSpec
from repro.faults import (
    ChaosInjector,
    ChaosSchedule,
    CorruptCheckpoint,
    DiskFail,
    DiskPressure,
    NoLostJobsChecker,
    TornWrite,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import HOUR, Simulation, SimulationError
from repro.telemetry import kinds


def build_system(hosts=2, config=None):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0)]
    for i in range(hosts):
        specs.append(StationSpec(f"h{i}", owner_model=NeverActiveOwner()))
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    return sim, system


class TestStorageActionValidation:
    def test_corrupt_needs_positive_newest(self):
        with pytest.raises(SimulationError):
            CorruptCheckpoint("home", at=0.0, newest=0)

    def test_torn_write_needs_positive_count(self):
        with pytest.raises(SimulationError):
            TornWrite("home", at=0.0, count=0)

    def test_disk_fail_requires_duration(self):
        with pytest.raises(SimulationError):
            DiskFail("home", at=0.0, duration=None)

    def test_disk_pressure_rejects_negative_target(self):
        with pytest.raises(SimulationError):
            DiskPressure("home", at=0.0, free_mb=-1.0)


class TestStorageActions:
    def test_corrupt_checkpoint_poisons_stored_images(self):
        sim, system = build_system(hosts=0)
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        schedule = ChaosSchedule("c", [CorruptCheckpoint("home", at=10.0)])
        injector = ChaosInjector(sim, system, schedule)
        seen = []
        system.bus.subscribe_event(kinds.FAULT_INJECTED, seen.append)
        system.start()
        injector.start()
        sim.run(until=20.0)
        store = system.scheduler("home").store
        assert not store.fetch(job.id).verify()
        # The poisoned resume points ride the fault telemetry.
        assert seen[0].payload["poisoned"] == [[job.id, 0.0]]

    def test_corrupt_checkpoint_unknown_job_name_rejected(self):
        sim, system = build_system(hosts=0)
        schedule = ChaosSchedule("c", [
            CorruptCheckpoint("home", at=10.0, job_name="ghost"),
        ])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        with pytest.raises(SimulationError, match="no job named"):
            sim.run(until=20.0)

    def test_torn_write_window_arms_and_disarms_the_store(self):
        sim, system = build_system(hosts=0)
        schedule = ChaosSchedule("t", [
            TornWrite("home", at=10.0, duration=20.0, count=5),
        ])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        armed = {}
        store = system.scheduler("home").store
        sim.schedule_at(15.0, lambda: armed.update(inside=store._torn_armed))
        sim.run(until=40.0)
        assert armed["inside"] == 5
        assert store._torn_armed == 0       # disarmed at window end

    def test_disk_fail_window(self):
        sim, system = build_system(hosts=0)
        schedule = ChaosSchedule("d", [
            DiskFail("home", at=10.0, duration=20.0),
        ])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        disk = system.station("home").disk
        observed = {}
        sim.schedule_at(15.0, lambda: observed.update(inside=disk.failed))
        sim.run(until=40.0)
        assert observed["inside"] is True
        assert disk.failed is False

    def test_disk_pressure_squeezes_and_releases(self):
        sim, system = build_system(hosts=0)
        schedule = ChaosSchedule("p", [
            DiskPressure("home", at=10.0, free_mb=1.0, duration=20.0),
        ])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        disk = system.station("home").disk
        observed = {}
        sim.schedule_at(9.0, lambda: observed.update(before=disk.free_mb))
        sim.schedule_at(15.0, lambda: observed.update(inside=disk.free_mb))
        sim.run(until=40.0)
        assert observed["inside"] == pytest.approx(1.0)
        assert disk.free_mb == pytest.approx(observed["before"])
        assert disk.usage_by_purpose().get("chaos-pressure") is None

    def test_disk_pressure_leaves_tighter_disk_alone(self):
        sim, system = build_system(hosts=0)
        disk = system.station("home").disk
        disk.allocate(disk.free_mb - 0.5, purpose="filler")
        action = DiskPressure("home", at=10.0, free_mb=1.0, duration=20.0)
        schedule = ChaosSchedule("p", [action])
        injector = ChaosInjector(sim, system, schedule)
        system.start()
        injector.start()
        sim.run(until=40.0)
        assert action.squeezed_mb == 0.0


class TestCheckerStorageExtensions:
    def make_job(self, demand=100.0):
        return Job(user="u", home="home", demand_seconds=demand)

    def test_restore_fallback_legitimately_lowers_the_floor(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.checkpointed_progress = 60.0
        system.bus.publish(kinds.JOB_VACATED, job=job, station="h0")
        job.checkpointed_progress = 40.0
        system.bus.publish(kinds.CHECKPOINT_RESTORE_FALLBACK, job=job,
                           restored_progress=40.0)
        system.bus.publish(kinds.JOB_RESUMED, job=job, station="h0")
        assert checker.ok
        assert checker.restore_fallbacks == 1
        assert checker.checkpoint_floor[job.id] == 40.0

    def test_fallback_raising_the_floor_is_a_violation(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        system.bus.publish(kinds.CHECKPOINT_RESTORE_FALLBACK, job=job,
                           restored_progress=90.0)
        assert not checker.ok
        assert "raised" in checker.violations[0]

    def test_resume_beyond_verified_floor_is_a_violation(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.progress = 50.0          # nothing ever checkpointed that much
        system.bus.publish(kinds.JOB_PLACED, job=job, host="h0")
        assert not checker.ok
        assert "beyond verified checkpoint" in checker.violations[0]

    def test_resume_from_poisoned_image_is_a_violation(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.checkpointed_progress = 50.0
        system.bus.publish(kinds.JOB_VACATED, job=job, station="h0")
        system.bus.publish(kinds.FAULT_INJECTED, fault="checkpoint_corrupt",
                           poisoned=[[job.id, 50.0]])
        job.progress = 50.0
        system.bus.publish(kinds.JOB_PLACED, job=job, host="h0")
        assert not checker.ok
        assert "corrupt image" in checker.violations[0]

    def test_fallback_clears_poisoned_resume_points(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.checkpointed_progress = 50.0
        system.bus.publish(kinds.JOB_VACATED, job=job, station="h0")
        system.bus.publish(kinds.FAULT_INJECTED, fault="checkpoint_corrupt",
                           poisoned=[[job.id, 50.0]])
        # Verify-on-restore discarded the poisoned image and fell back.
        job.checkpointed_progress = 0.0
        system.bus.publish(kinds.CHECKPOINT_RESTORE_FALLBACK, job=job,
                           restored_progress=0.0)
        job.progress = 0.0
        system.bus.publish(kinds.JOB_PLACED, job=job, host="h0")
        assert checker.ok

    def test_poison_during_inflight_placement_is_not_recorded(self):
        _, system = build_system(hosts=0)
        checker = NoLostJobsChecker(system.bus)
        job = self.make_job()
        system.bus.publish(kinds.JOB_SUBMITTED, job=job)
        job.state = "placing"      # image already read and verified
        system.bus.publish(kinds.FAULT_INJECTED, fault="checkpoint_corrupt",
                           poisoned=[[job.id, 0.0]])
        assert checker.poisoned == {}


# ---------------------------------------------------------------------------
# The storage scenarios' specific outcomes.  The generic acceptance
# (zero lost jobs, zero duplicates, byte-identical replay) runs over
# every schedule — these included — in test_chaos.py.

def _kind_counts(run):
    counts = {}
    for line in run.trace_lines:
        kind = json.loads(line)["kind"]
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def test_storage_suite_lists_the_three_scenarios():
    assert SUITES["storage"] == ("corrupt-restore", "torn-write",
                                 "disk-chaos")


def test_corrupt_restore_exercises_verify_on_restore():
    run = run_chaos("corrupt-restore")
    assert run.no_lost.restore_fallbacks > 0
    counts = _kind_counts(run)
    assert counts.get(kinds.CHECKPOINT_RESTORE_FALLBACK, 0) > 0
    # The scenario override keeps two generations per job.
    assert SCENARIO_CONFIGS["corrupt-restore"]["checkpoint_generations"] == 2
    assert run.system.scheduler("home").store.generations == 2
    assert run.system.scheduler("home").store.corrupt_discarded > 0


def test_torn_write_scenario_telemetered_and_survivable():
    run = run_chaos("torn-write")
    counts = _kind_counts(run)
    assert counts.get(kinds.CHECKPOINT_WRITE_TORN, 0) > 0
    assert run.system.scheduler("home").store.torn_writes > 0


def test_disk_chaos_scenario_loses_images_loudly():
    run = run_chaos("disk-chaos")
    counts = _kind_counts(run)
    assert counts.get(kinds.CHECKPOINT_IMAGE_LOST, 0) > 0
    disk = run.system.station("home").disk
    # Pressure released and the disk repaired by the horizon.
    assert disk.failed is False
    assert disk.usage_by_purpose().get("chaos-pressure") is None
