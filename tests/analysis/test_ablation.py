"""Tests for the ablation harness (trace replay under variants)."""

import pytest

from repro.analysis.ablation import (
    ReplayRun,
    baseline_trace,
    run_variant,
    summarize,
)
from repro.core import CondorConfig, FcfsPolicy

TRACE_KWARGS = {"seed": 3, "days": 2, "job_scale": 0.04}


@pytest.fixture(scope="module")
def trace():
    return baseline_trace(**TRACE_KWARGS)


def test_trace_is_cached(trace):
    assert baseline_trace(**TRACE_KWARGS) is trace


def test_trace_records_have_inputs_only(trace):
    record = trace[0]
    assert set(record) == {"user", "home", "demand_seconds",
                           "syscall_rate", "submitted_at", "layout"}


def test_replay_executes_same_workload(trace):
    run = run_variant(trace, seed=3, days=2)
    assert len(run.jobs) == len(trace)
    assert [j.demand_seconds for j in run.jobs] == \
        [r["demand_seconds"] for r in trace]


def test_variants_share_owner_randomness(trace):
    a = run_variant(trace, seed=3, days=2)
    b = run_variant(trace, seed=3, days=2,
                    config=CondorConfig(grace_period=0.0))
    # Identical owner processes: same total owner hours on every station.
    owner_a = [s.ledger.totals["owner"] for s in a.system.stations.values()]
    owner_b = [s.ledger.totals["owner"] for s in b.system.stations.values()]
    assert owner_a == owner_b


def test_policy_variant_changes_behaviour_not_workload(trace):
    updown = run_variant(trace, seed=3, days=2)
    fcfs = run_variant(trace, seed=3, days=2, policy=FcfsPolicy())
    assert len(updown.jobs) == len(fcfs.jobs)
    assert updown.system.policy.name == "up-down"
    assert fcfs.system.policy.name == "fcfs"


def test_summarize_keys(trace):
    summary = summarize(run_variant(trace, seed=3, days=2))
    expected = {"completed", "completion_rate", "remote_hours",
                "wasted_hours", "checkpoints", "kills", "preemptions",
                "avg_wait_all", "avg_wait_light", "avg_wait_heavy",
                "avg_leverage"}
    assert set(summary) == expected
    assert 0.0 <= summary["completion_rate"] <= 1.0


def test_replay_run_light_heavy_partition(trace):
    run = ReplayRun(trace, seed=3, days=2).execute()
    assert "A" not in run.light_users
    all_users = {j.user for j in run.jobs}
    assert run.light_users <= all_users
