"""The sweep executor's determinism contract.

A spec executed through the sweep machinery must be indistinguishable
from the same experiment run directly: identical headline scalars and a
byte-identical telemetry trace.  Parallelism (``jobs=N``) must change
wall time only, never results.
"""

import dataclasses

import pytest

from repro.analysis import experiment
from repro.analysis.ablation import baseline_trace
from repro.analysis.sweep import (
    COLLECTORS,
    MonthSpec,
    VariantSpec,
    month_spec,
    run_spec,
    run_specs,
    sweep_seeds,
    sweep_values,
)
from repro.analysis.validation import headline_metrics
from repro.core.config import CondorConfig
from repro.core.job import reset_job_ids
from repro.sim.errors import SimulationError

SEED = 7
KW = {"days": 2, "job_scale": 0.2}


class TestWorkerMatchesDirectRun:
    def test_headline_scalars_identical(self):
        reset_job_ids()
        direct = headline_metrics(experiment.run_month(seed=SEED, **KW))
        record = run_spec(month_spec(SEED, **KW))
        assert record["seed"] == SEED
        assert record["metrics"] == direct

    def test_traces_byte_identical(self, tmp_path):
        direct_path = tmp_path / "direct.jsonl"
        sweep_path = tmp_path / "sweep.jsonl"
        reset_job_ids()
        experiment.run_month(seed=SEED, trace_path=str(direct_path), **KW)
        run_spec(month_spec(SEED, trace_path=str(sweep_path), **KW))
        direct = direct_path.read_bytes()
        assert len(direct) > 0
        assert direct == sweep_path.read_bytes()


class TestOrderingAndParallelism:
    def test_results_in_input_order(self):
        seeds = [11, 5, 8]
        results = sweep_seeds(seeds, **KW)
        assert [seed for seed, _m in results] == seeds

    def test_serial_flavours_agree(self):
        for jobs in (None, 0, 1):
            results = run_specs([month_spec(SEED, **KW)], jobs=jobs)
            assert results[0]["seed"] == SEED

    def test_parallel_identical_to_serial(self):
        specs = [month_spec(seed, **KW) for seed in (3, 4)]
        assert run_specs(specs, jobs=2) == run_specs(specs)

    def test_empty_specs(self):
        assert run_specs([]) == []

    def test_unknown_spec_rejected(self):
        with pytest.raises(SimulationError):
            run_spec(object())

    def test_unknown_collector_rejected(self):
        with pytest.raises(SimulationError):
            run_spec(month_spec(SEED, collector="nope", **KW))


class TestVariantSweep:
    @pytest.fixture(scope="class")
    def records(self):
        return baseline_trace(days=3, job_scale=0.15)

    def test_values_in_input_order(self, records):
        values = [0.0, 300.0]
        results = sweep_values(records, "grace_period", values, days=3)
        assert [value for value, _s in results] == values
        for _value, summary in results:
            assert "completed" in summary

    def test_unknown_field_rejected(self, records):
        with pytest.raises(SimulationError):
            sweep_values(records, "not_a_field", [1], days=3)

    def test_spec_is_picklable(self, records):
        import pickle

        spec = VariantSpec(records=tuple(records),
                           config=CondorConfig(grace_period=0.0))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.config.grace_period == 0.0
        assert len(clone.records) == len(records)


class TestCollectorsRegistry:
    def test_builtin_collectors_present(self):
        assert {"headline", "ablation", "pool"} <= set(COLLECTORS)

    def test_month_spec_sorts_kwargs(self):
        a = month_spec(1, days=2, job_scale=0.5)
        b = month_spec(1, job_scale=0.5, days=2)
        assert a == b
        assert isinstance(a, MonthSpec)


class TestCacheKeyGuard:
    """Mutating a config after caching must not alias the old entry."""

    def test_mutated_config_misses_stale_entry(self):
        experiment.clear_cache()
        try:
            config = CondorConfig(max_machines_per_station=6)
            first = experiment.cached_month_run(seed=SEED, config=config,
                                                **KW)
            config.grace_period = 0.0
            second = experiment.cached_month_run(seed=SEED, config=config,
                                                 **KW)
            assert second is not first
            assert second.config.grace_period == 0.0
        finally:
            experiment.clear_cache()

    def test_equal_configs_share_entry(self):
        experiment.clear_cache()
        try:
            first = experiment.cached_month_run(
                seed=SEED, config=CondorConfig(grace_period=60.0), **KW)
            second = experiment.cached_month_run(
                seed=SEED, config=CondorConfig(grace_period=60.0), **KW)
            assert second is first
        finally:
            experiment.clear_cache()

    def test_freeze_handles_containers(self):
        frozen = experiment._freeze(
            {"a": [1, 2], "b": CondorConfig(), "c": {3, 4}})
        assert hash(frozen) == hash(experiment._freeze(
            {"b": CondorConfig(), "c": {4, 3}, "a": [1, 2]}))

    def test_unfreezable_kwarg_bypasses_cache(self):
        class Unhashable:
            __hash__ = None

        with pytest.raises(experiment._Uncacheable):
            experiment._freeze(Unhashable())

    def test_distinct_field_values_distinct_keys(self):
        a = experiment._freeze(CondorConfig(grace_period=0.0))
        b = experiment._freeze(CondorConfig(grace_period=300.0))
        assert a != b
        assert dataclasses.is_dataclass(CondorConfig())
