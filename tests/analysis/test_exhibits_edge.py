"""Exhibits must degrade gracefully on tiny or empty runs."""

import pytest

from repro.analysis import ALL_EXHIBITS
from repro.analysis.experiment import ExperimentRun
from repro.workload.users import UserProfile
from repro.sim.randomness import Constant, Exponential


@pytest.fixture(scope="module")
def empty_run():
    """A run whose users submit (almost) nothing."""
    profiles_factory = [
        UserProfile("A", "ws-01", 1, Constant(600.0),
                    batch_size_dist=Constant(1),
                    standing_target=1),
        UserProfile("B", "ws-02", 1, Constant(600.0),
                    batch_size_dist=Constant(1),
                    interbatch_dist=Exponential(3600.0)),
    ]
    run = ExperimentRun(seed=1, days=1, stations=5,
                        profiles=profiles_factory)
    return run.execute()


@pytest.mark.parametrize("name", sorted(ALL_EXHIBITS))
def test_exhibits_do_not_crash_on_tiny_run(empty_run, name):
    exhibit = ALL_EXHIBITS[name](empty_run)
    assert isinstance(exhibit["text"], str)
