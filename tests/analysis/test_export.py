"""Tests for the CSV exporter."""

import csv

import pytest

from repro.analysis import cached_month_run
from repro.analysis.export import export_csvs


@pytest.fixture(scope="module")
def run():
    return cached_month_run(seed=11, days=6, job_scale=0.15)


def read_csv(path):
    with open(path) as f:
        return list(csv.reader(f))


def test_exports_every_exhibit(run, tmp_path):
    files = export_csvs(run, tmp_path)
    names = {p.split("/")[-1] for p in files}
    assert {"table_1.csv", "figure_2_demand_cdf.csv",
            "figure_5_utilization_month.csv", "figure_9_leverage.csv",
            "headline_scalars.csv", "jobs.csv"} <= names


def test_table1_csv_contents(run, tmp_path):
    export_csvs(run, tmp_path)
    rows = read_csv(tmp_path / "table_1.csv")
    assert rows[0][0] == "user"
    users = {row[0] for row in rows[1:]}
    assert "A" in users


def test_jobs_csv_has_one_row_per_job(run, tmp_path):
    export_csvs(run, tmp_path)
    rows = read_csv(tmp_path / "jobs.csv")
    assert len(rows) - 1 == len(run.jobs)


def test_utilization_csv_fractions_bounded(run, tmp_path):
    export_csvs(run, tmp_path)
    rows = read_csv(tmp_path / "figure_5_utilization_month.csv")
    for _hour, system_u, local_u in rows[1:]:
        assert 0.0 <= float(system_u) <= 1.0 + 1e-6
        assert 0.0 <= float(local_u) <= 1.0 + 1e-6


def test_cdf_csv_monotone(run, tmp_path):
    export_csvs(run, tmp_path)
    rows = read_csv(tmp_path / "figure_2_demand_cdf.csv")
    values = [float(v) for _g, v in rows[1:]]
    assert values == sorted(values)
