"""Tests for the statistical validation utilities."""

import math

import pytest

from repro.analysis.validation import (
    confidence_interval,
    demand_distribution_ks,
    headline_metrics,
    ks_statistic,
    multi_seed_summary,
    relative_error,
    shape_report,
)
from repro.analysis import cached_month_run

RUN_KWARGS = {"days": 4, "job_scale": 0.08}


class TestConfidenceInterval:
    def test_exact_for_constant_sample(self):
        mean, half = confidence_interval([5.0, 5.0, 5.0])
        assert mean == 5.0
        assert half == 0.0

    def test_single_value_infinite_width(self):
        mean, half = confidence_interval([3.0])
        assert mean == 3.0
        assert math.isinf(half)

    def test_width_shrinks_with_samples(self):
        small = confidence_interval([1.0, 2.0, 3.0])[1]
        large = confidence_interval([1.0, 2.0, 3.0] * 10)[1]
        assert large < small


class TestKs:
    def test_perfect_fit_small_distance(self):
        # Large exponential sample against its own CDF.
        import random
        rng = random.Random(4)
        values = [rng.expovariate(1.0) for _ in range(4000)]
        d = ks_statistic(values, lambda x: 1.0 - math.exp(-x))
        assert d < 0.03

    def test_bad_fit_large_distance(self):
        values = [10.0] * 100
        d = ks_statistic(values, lambda x: 1.0 - math.exp(-x))
        assert d > 0.5

    def test_empty_sample(self):
        assert ks_statistic([], lambda x: 0.5) is None


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_zero_target(self):
        assert relative_error(1.0, 0.0) is None


class TestOnRuns:
    def test_headline_metrics_keys(self):
        run = cached_month_run(seed=11, days=6, job_scale=0.15)
        metrics = headline_metrics(run)
        assert set(metrics) == {
            "jobs_submitted", "completion_rate", "local_utilization",
            "remote_hours", "available_hours", "avg_leverage",
            "avg_wait_light", "avg_wait_heavy",
        }
        assert 0.0 <= metrics["completion_rate"] <= 1.0

    def test_multi_seed_summary_stability(self):
        summary = multi_seed_summary(seeds=(1, 2, 3), **RUN_KWARGS)
        mean_util, half_util = summary["local_utilization"]
        # Calibration holds across seeds, not just on seed 42.
        assert 0.12 < mean_util < 0.35
        assert half_util < mean_util        # CI narrower than the value
        mean_rate, _ = summary["completion_rate"]
        assert mean_rate > 0.6

    def test_demand_generator_matches_model(self):
        run = cached_month_run(seed=11, days=6, job_scale=0.15)
        profile = next(p for p in run.profiles if p.name == "A")
        d = demand_distribution_ks(run, profile)
        # ~100 samples: KS distance must be small for a faithful sampler.
        assert d < 0.15

    def test_shape_report_rows(self):
        summary = {"local_utilization": (0.24, 0.02)}
        rows = shape_report(summary, {"local_utilization": 0.25})
        metric, target, mean, half, error = rows[0]
        assert metric == "local_utilization"
        assert error == pytest.approx(0.04)
