"""Golden tests for federation composed with the space-parallel kernel.

The contract: a federated :class:`ShardProfile` (``pools=K``) produces a
**byte-identical** merged trace no matter how many shard processes ran
it — each pool coordinator executes inside its pool's home shard, the
matchmaker on rank 0, and only the lease control plane crosses shard
boundaries.  These tests pin the identity down for K=1 (the degenerate
single-pool build, byte-identical to the classic coordinator) and K=4,
exercise a full cross-shard lease lifecycle (grant, pushes, probes,
expiry/return), and run the federation chaos scenarios under shards.
"""

import hashlib
import json

import pytest

from repro.analysis.shardrun import (
    SHARD_SCENARIOS,
    ShardProfile,
    run_reference,
    run_sharded,
    shard_of_pool,
)
from repro.sim import SimulationError


def _sha(trace_lines):
    digest = hashlib.sha256()
    for line in trace_lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _kinds(trace_lines):
    return {line.split('"kind":"', 1)[1].split('"', 1)[0]
            for line in trace_lines}


#: 8 stations, 4 cells, one pool per cell — every pool has its own shard
#: at shards=4, and pools pair up two-per-shard at shards=2.
_K4 = dict(seed=11, days=0.5, stations=8, cells=4, pools=4)

#: Two pools, two quiet cells: pool 1 advertises pure surplus, pool 0
#: borrows — the asymmetry that makes cross-pool leases flow.
_LEASE = dict(seed=11, days=0.5, stations=8, cells=4, pools=2,
              quiet_cells=2)


def test_federated_k4_trace_identical_across_shard_counts():
    reference = run_reference(ShardProfile(**_K4))
    assert reference["trace"], "reference produced an empty trace"
    want = _sha(reference["trace"])
    for shards in (1, 2, 4):
        result = run_sharded(ShardProfile(**_K4), shards=shards)
        assert _sha(result["trace"]) == want, (
            f"{shards}-shard federated trace diverged from the serial "
            f"reference")
        assert result["jobs_submitted"] == reference["jobs_submitted"]
        assert result["jobs_completed"] == reference["jobs_completed"]
    assert result["windows"] > 0
    # Pool coordinators live on ranks 1..3 at shards=4: at minimum their
    # adverts to the rank-0 matchmaker cross the cut.
    assert result["descriptors_routed"] > 0


def test_federated_k1_degenerates_to_the_classic_build():
    base = dict(seed=11, days=0.25, stations=8, cells=4)
    classic = run_reference(ShardProfile(**base, pools=0))
    single = run_reference(ShardProfile(**base, pools=1))
    assert single["trace"] == classic["trace"], (
        "pools=1 must be byte-identical to the classic coordinator")
    want = _sha(classic["trace"])
    for shards in (1, 2, 4):
        result = run_sharded(ShardProfile(**base, pools=1), shards=shards)
        assert _sha(result["trace"]) == want


def test_cross_shard_lease_lifecycle():
    reference = run_reference(ShardProfile(**_LEASE))
    kinds = _kinds(reference["trace"])
    assert "cross_pool_lease_granted" in kinds, "no lease ever flowed"
    assert "cross_pool_lease_returned" in kinds, "no lease ever ended"
    assert "pool_advert" in kinds
    want = _sha(reference["trace"])
    # At shards=2 the lender pool (1) and the borrower pool (0) live on
    # different ranks: the grant, the rehome pointers, the borrowed
    # stations' pushes/probes and the returns all cross the cut.
    result = run_sharded(ShardProfile(**_LEASE), shards=2)
    assert _sha(result["trace"]) == want
    assert result["descriptors_routed"] > 0


def test_lease_expiry_preempts_and_returns():
    # A long horizon crosses several federation_lease_duration windows,
    # so expiry-driven returns must appear alongside demand-driven ones.
    spec = dict(_LEASE, days=1.0)
    reference = run_reference(ShardProfile(**spec))
    returns = [json.loads(line) for line in reference["trace"]
               if '"kind":"cross_pool_lease_returned"' in line]
    assert returns, "no lease was ever returned"
    reasons = {record["payload"]["reason"] for record in returns}
    assert "lease_expired" in reasons or "owner_return" in reasons
    sharded = run_sharded(ShardProfile(**spec), shards=2)
    assert sharded["trace"] == reference["trace"]


def test_matchmaker_partition_scenario_sharded():
    spec = dict(seed=23, days=1.0, stations=8, cells=4, pools=2,
                quiet_cells=2, scenario="matchmaker-partition")
    reference = run_reference(ShardProfile(**spec))
    kinds = _kinds(reference["trace"])
    assert "fault_injected" in kinds, "partition never fired"
    assert "cross_pool_lease_granted" in kinds
    sharded = run_sharded(ShardProfile(**spec), shards=2)
    assert sharded["trace"] == reference["trace"]
    replay = run_sharded(ShardProfile(**spec), shards=2)
    assert replay["trace"] == sharded["trace"]


def test_pool_coordinator_crash_scenario_sharded():
    # Satellite of PR 8: the PR-7 federation crash scenario under
    # --shards 2 — zero lost jobs (NoLostJobsChecker runs inside each
    # shard's finalize) and byte-identical replay.
    spec = dict(seed=23, days=1.0, stations=8, cells=4, pools=2,
                quiet_cells=2, scenario="pool-crash")
    reference = run_reference(ShardProfile(**spec))
    kinds = _kinds(reference["trace"])
    assert "fault_injected" in kinds, "no pool coordinator ever crashed"
    assert "cross_pool_lease_granted" in kinds
    sharded = run_sharded(ShardProfile(**spec), shards=2)
    assert sharded["trace"] == reference["trace"]
    replay = run_sharded(ShardProfile(**spec), shards=2)
    assert replay["trace"] == sharded["trace"]


def test_shard_of_pool_is_contiguous_and_total():
    for pools in (2, 3, 4, 10):
        for shards in range(1, pools + 1):
            ranks = [shard_of_pool(p, pools, shards)
                     for p in range(pools)]
            assert ranks == sorted(ranks)
            assert set(ranks) == set(range(shards))


def test_more_shards_than_pools_rejected():
    with pytest.raises(SimulationError, match="pool never straddles"):
        run_sharded(
            ShardProfile(seed=1, days=0.1, stations=8, cells=4, pools=2),
            shards=4)


def test_profile_rejects_more_pools_than_cells():
    with pytest.raises(SimulationError, match="cell never straddles"):
        ShardProfile(seed=1, days=0.1, stations=8, cells=2, pools=4)


def test_federation_scenarios_registered():
    assert "pool-crash" in SHARD_SCENARIOS
    assert "matchmaker-partition" in SHARD_SCENARIOS


def test_federation_scenarios_require_pools():
    spec = ShardProfile(seed=1, days=1.0, stations=8, cells=4,
                        scenario="pool-crash")
    with pytest.raises(SimulationError, match="pools >= 2"):
        run_reference(spec)
