"""Tests for the sensitivity sweep utilities."""

import pytest

from repro.analysis.ablation import baseline_trace
from repro.analysis.sensitivity import metric_series, monotone, sweep_config
from repro.sim import MINUTE, SimulationError

TRACE_KWARGS = {"seed": 3, "days": 2, "job_scale": 0.04}


@pytest.fixture(scope="module")
def trace():
    return baseline_trace(**TRACE_KWARGS)


def test_unknown_field_rejected(trace):
    with pytest.raises(SimulationError):
        sweep_config(trace, "warp_factor", (1, 2), days=2, seed=3)


def test_sweep_returns_one_summary_per_value(trace):
    results = sweep_config(trace, "grace_period",
                           (0.0, 5 * MINUTE), days=2, seed=3)
    assert [v for v, _s in results] == [0.0, 5 * MINUTE]
    assert all("checkpoints" in s for _v, s in results)


def test_metric_series_extraction():
    sweep = [(1, {"m": 10.0}), (2, {"m": 20.0})]
    assert metric_series(sweep, "m") == [(1, 10.0), (2, 20.0)]


def test_monotone_checks():
    rising = [(1, 1.0), (2, 2.0), (3, 3.0)]
    assert monotone(rising, increasing=True)
    assert not monotone(rising, increasing=False)
    wiggle = [(1, 1.0), (2, 0.99), (3, 3.0)]
    assert monotone(wiggle, increasing=True, tolerance=0.05)
