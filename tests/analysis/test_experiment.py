"""Integration tests: a scaled-down month through the full harness.

One shared run (6 simulated days, ~15 % of the paper's job counts) backs
all assertions here; the full-scale month is exercised by the benchmark
suite.
"""

import pytest

from repro.analysis import (
    ALL_EXHIBITS,
    ExperimentRun,
    cached_month_run,
    figure_2,
    figure_4,
    figure_5,
    figure_9,
    headline_scalars,
    table_1,
)
from repro.analysis.experiment import clear_cache

RUN_KWARGS = {"seed": 11, "days": 6, "job_scale": 0.15}


@pytest.fixture(scope="module")
def run():
    return cached_month_run(**RUN_KWARGS)


class TestExperimentMechanics:
    def test_execute_is_idempotent(self, run):
        before = run.sim.now
        run.execute()
        assert run.sim.now == before

    def test_all_submitted_jobs_tracked(self, run):
        assert len(run.jobs) > 50
        assert all(job.submitted_at is not None for job in run.jobs)

    def test_most_jobs_complete(self, run):
        # The system keeps up with the workload (submission-limited).
        assert len(run.completed_jobs) >= 0.7 * len(run.jobs)

    def test_no_work_is_ever_lost_with_checkpointing(self, run):
        # The paper's guarantee: nothing is executed twice (no kills, no
        # crashes in the baseline run).
        assert all(job.wasted_cpu_seconds == 0.0 for job in run.jobs)

    def test_completed_jobs_did_their_demand_remotely(self, run):
        for job in run.completed_jobs:
            assert job.remote_cpu_seconds == pytest.approx(
                job.demand_seconds, rel=1e-6, abs=1.0
            )

    def test_cached_run_is_shared(self, run):
        assert cached_month_run(**RUN_KWARGS) is run

    def test_light_and_heavy_partition(self, run):
        light = set(run.light_users)
        assert "A" not in light
        assert light == {"B", "C", "D", "E"}


class TestExhibitsRun:
    @pytest.mark.parametrize("name", sorted(ALL_EXHIBITS))
    def test_exhibit_produces_data_and_text(self, run, name):
        exhibit = ALL_EXHIBITS[name](run)
        assert "data" in exhibit
        assert isinstance(exhibit["text"], str)
        assert len(exhibit["text"]) > 40


class TestShapeProperties:
    """The qualitative results the paper reports must hold even at
    reduced scale."""

    def test_heavy_user_dominates_demand(self, run):
        data = table_1(run)["data"]
        top = data["rows"][0]
        assert top["user"] == "A"
        assert top["demand_share"] > 60.0

    def test_demand_median_below_mean(self, run):
        data = figure_2(run)["data"]
        assert data["median"] < data["mean"]

    def test_light_users_wait_less_than_heavy(self, run):
        data = figure_4(run)["data"]
        assert data["avg_light"] < data["avg_heavy"]

    def test_condor_harvested_real_capacity(self, run):
        data = figure_5(run)["data"]
        assert run.util.remote_hours() > 100.0
        assert max(data["system"]) > max(data["local"])

    def test_leverage_is_large(self, run):
        data = figure_9(run)["data"]
        assert data["average"] > 100.0

    def test_daemon_overheads_below_one_percent(self, run):
        data = headline_scalars(run)["data"]
        _ref, coordinator = data["coordinator CPU fraction (< 0.01)"]
        _ref, scheduler = data["max local scheduler CPU fraction (< 0.01)"]
        assert coordinator < 0.01
        assert scheduler < 0.01


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        clear_cache()
        a = ExperimentRun(seed=5, days=2, job_scale=0.05).execute()
        b = ExperimentRun(seed=5, days=2, job_scale=0.05).execute()
        assert len(a.jobs) == len(b.jobs)
        assert [j.demand_seconds for j in a.jobs] == \
            [j.demand_seconds for j in b.jobs]
        assert [j.completed_at for j in a.completed_jobs] == \
            [j.completed_at for j in b.completed_jobs]
        assert a.util.remote_hours() == b.util.remote_hours()

    def test_different_seed_different_outcome(self):
        a = ExperimentRun(seed=5, days=2, job_scale=0.05).execute()
        b = ExperimentRun(seed=6, days=2, job_scale=0.05).execute()
        assert [j.demand_seconds for j in a.jobs] != \
            [j.demand_seconds for j in b.jobs]
