"""Golden tests for the space-parallel kernel.

The contract under test: for the same :class:`ShardProfile`, the merged
canonical trace is **byte-identical** no matter how many shard processes
executed it — including the serial in-process reference, and including
runs with an active chaos schedule.  These are the gates that make the
conservative-window runtime trustworthy; everything else about sharding
is an optimisation detail.
"""

import hashlib

import pytest

from repro.analysis.shardrun import (
    SHARD_SCENARIOS,
    ShardProfile,
    run_reference,
    run_sharded,
    shard_of_cell,
)
from repro.sim import SimulationError
from repro.sim.sharded import ShardedSimulation
from repro.telemetry.trace import merge_shard_lines


def _sha(trace_lines):
    digest = hashlib.sha256()
    for line in trace_lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


#: Small but non-trivial: 8 stations, 4 cells, every user shape active.
_PROFILE = dict(seed=11, days=0.5, stations=8, cells=4)


def test_month_trace_identical_across_shard_counts():
    reference = run_reference(ShardProfile(**_PROFILE))
    assert reference["trace"], "reference produced an empty trace"
    want = _sha(reference["trace"])
    for shards in (1, 2, 4):
        result = run_sharded(ShardProfile(**_PROFILE), shards=shards)
        assert _sha(result["trace"]) == want, (
            f"{shards}-shard trace diverged from the serial reference")
        assert result["jobs_submitted"] == reference["jobs_submitted"]
        assert result["jobs_completed"] == reference["jobs_completed"]
    assert result["windows"] > 0
    assert result["descriptors_routed"] > 0


def test_chaos_scenario_trace_identical_and_replays():
    # Horizon just past the last fault clearance (~0.52 days).
    spec = dict(seed=23, days=0.6, stations=8, cells=4, scenario="mix")
    reference = run_reference(ShardProfile(**spec))
    kinds = {line.split('"kind":"', 1)[1].split('"', 1)[0]
             for line in reference["trace"]}
    assert "fault_injected" in kinds, "chaos schedule never fired"
    assert "message_retry" in kinds, "loss burst never forced a retry"
    want = _sha(reference["trace"])
    sharded = run_sharded(ShardProfile(**spec), shards=2)
    assert _sha(sharded["trace"]) == want
    replay = run_sharded(ShardProfile(**spec), shards=2)
    assert replay["trace"] == sharded["trace"]


def test_merged_trace_is_canonical_jsonl():
    import json

    result = run_sharded(ShardProfile(**_PROFILE), shards=2)
    for seq, line in enumerate(result["trace"]):
        record = json.loads(line)
        assert record["seq"] == seq
        assert json.dumps(record, sort_keys=True,
                          separators=(",", ":")) == line


def test_shard_of_cell_is_contiguous_and_total():
    for cells in (1, 3, 4, 8):
        for shards in range(1, cells + 1):
            ranks = [shard_of_cell(c, cells, shards) for c in range(cells)]
            assert ranks == sorted(ranks)
            assert set(ranks) == set(range(shards))


def test_more_shards_than_cells_rejected():
    with pytest.raises(SimulationError):
        run_sharded(ShardProfile(seed=1, days=0.1, stations=8, cells=2),
                    shards=4)


def test_scenario_registry_has_mix():
    assert "mix" in SHARD_SCENARIOS


def _failing_worker(conn, message):
    raise RuntimeError(message)


def _erroring_worker(conn, message):
    import traceback
    try:
        raise RuntimeError(message)
    except RuntimeError:
        conn.send(("error", traceback.format_exc()))


def test_conductor_surfaces_worker_errors():
    conductor = ShardedSimulation(
        _erroring_worker, [("boom-on-rank-0",)], latency=0.05, horizon=1.0)
    with pytest.raises(SimulationError, match="boom-on-rank-0"):
        conductor.run()


def test_conductor_rejects_bad_window_parameters():
    with pytest.raises(SimulationError):
        ShardedSimulation(_failing_worker, [], latency=0.0, horizon=1.0)
    with pytest.raises(SimulationError):
        ShardedSimulation(_failing_worker, [], latency=0.05, horizon=0.0)


def test_merge_orders_horizon_tail_by_key():
    # Two single-line streams arriving key-unsorted within one stream:
    # the merge must re-establish (t, locus, idx) order.
    sep = "\x1f"

    def keyed(t, locus, idx, kind):
        head = f'{{"kind":"{kind}","payload":null'
        tail = f'"src":"x","t":{t}}}'
        return sep.join((repr(float(t)), str(locus), str(idx), head, tail))

    stream_a = [keyed(1.0, 5, 0, "late"), keyed(1.0, 2, 0, "early")]
    stream_b = [keyed(1.0, 3, 0, "middle")]
    merged = merge_shard_lines([stream_a, stream_b])
    kinds = [line.split('"kind":"', 1)[1].split('"', 1)[0]
             for line in merged]
    assert kinds == ["early", "middle", "late"]
    assert [line.count('"seq":') for line in merged] == [1, 1, 1]
