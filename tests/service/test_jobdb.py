"""Job-database tests: one transaction per transition, crash recovery."""

import sqlite3

import pytest

from repro.service import jobdb
from repro.service.errors import ServiceError
from repro.service.jobdb import JobDatabase


@pytest.fixture
def db(tmp_path):
    database = JobDatabase(tmp_path / "svc.sqlite")
    yield database
    database.close()


class TestLifecycle:
    def test_submit_queues_at_tail(self, db):
        k1 = db.submit("m:f", owner="ann")
        k2 = db.submit("m:f", owner="bob")
        assert [row[0] for row in db.queue()] == [k1, k2]
        assert db.counts() == {"submitted": 2, "pending": 2}

    def test_place_pops_queue_and_bumps_incarnation(self, db):
        key = db.submit("m:f", payload={"steps": 3}, owner="ann")
        incarnation = db.place(key, "agent-a", epoch=1)
        assert incarnation == 1
        assert db.queue() == []
        record = db.job(key)
        assert record["state"] == jobdb.PLACED
        assert record["agent"] == "agent-a"
        assert record["payload"] == {"steps": 3}

    def test_place_requires_queued_state(self, db):
        key = db.submit("m:f")
        db.place(key, "a", 1)
        with pytest.raises(ServiceError, match="cannot place"):
            db.place(key, "b", 1)

    def test_full_happy_path(self, db):
        key = db.submit("m:f", owner="ann")
        inc = db.place(key, "a", 1)
        assert db.running(key, "a", inc)
        assert db.checkpoint(key, "a", inc, 10)
        assert db.complete(key, "a", inc, result=99)
        record = db.job(key)
        assert record["state"] == jobdb.DONE
        assert record["progress"] == 10

    def test_vacate_requeues_at_head(self, db):
        first = db.submit("m:f", owner="ann")
        second = db.submit("m:f", owner="ann")
        db.place(first, "a", 1)
        db.vacate(first)
        # The vacated job outranks the younger still-queued one.
        assert [row[0] for row in db.queue()] == [first, second]

    def test_revived_job_gets_new_incarnation(self, db):
        key = db.submit("m:f")
        assert db.place(key, "a", 1) == 1
        db.vacate(key)
        assert db.place(key, "b", 1) == 2

    def test_stop_is_terminal(self, db):
        key = db.submit("m:f")
        assert db.stop(key)
        assert db.queue() == []
        assert not db.stop(key)          # already terminal
        assert not db.vacate(key)

    def test_fail_records_error(self, db):
        key = db.submit("m:f")
        inc = db.place(key, "a", 1)
        assert db.fail(key, "a", inc, "ValueError: boom")
        assert db.job(key)["error"] == "ValueError: boom"


class TestFencing:
    def test_stale_incarnation_completion_rejected(self, db):
        key = db.submit("m:f")
        old = db.place(key, "a", 1)
        db.vacate(key)
        new = db.place(key, "b", 2)
        # The zombie (agent a, incarnation 1) reports success late.
        assert not db.complete(key, "a", old, result=1)
        assert db.counter("service_stale_results_rejected") == 1
        # The legitimate incarnation still completes.
        assert db.complete(key, "b", new, result=2)
        assert db.job(key)["state"] == jobdb.DONE

    def test_completion_is_exactly_once(self, db):
        key = db.submit("m:f")
        inc = db.place(key, "a", 1)
        assert db.complete(key, "a", inc, result=1)
        # The duplicate delivery of the same report is rejected.
        assert not db.complete(key, "a", inc, result=1)

    def test_progress_watermark_is_monotone(self, db):
        key = db.submit("m:f")
        inc = db.place(key, "a", 1)
        assert db.checkpoint(key, "a", inc, 30)
        assert not db.checkpoint(key, "a", inc, 20)   # would regress
        assert db.job(key)["progress"] == 30
        assert db.counter("service_progress_regressions") == 1

    def test_epoch_bump_and_promotion_counter(self, db):
        assert db.epoch == 0
        assert db.bump_epoch() == 1
        assert db.bump_epoch(promotion=True) == 2
        assert db.counter("service_promotions") == 1


class TestCrashRecovery:
    def test_reopen_recovers_queue_and_inflight(self, tmp_path):
        path = tmp_path / "svc.sqlite"
        db1 = JobDatabase(path)
        queued = db1.submit("m:f", owner="ann")
        hosted = db1.submit("m:f", owner="bob")
        inc = db1.place(hosted, "agent-a", epoch=1)
        db1.checkpoint(hosted, "agent-a", inc, 17)
        db1.close()     # stand-in for kill -9: no shutdown logic exists

        db2 = JobDatabase(path)
        assert [row[0] for row in db2.queue()] == [queued]
        assert db2.inflight() == [(hosted, "agent-a", 1, 1, 17, "bob")]
        db2.close()

    def test_owner_indices_survive_restart(self, tmp_path):
        path = tmp_path / "svc.sqlite"
        db1 = JobDatabase(path)
        db1.save_owner_indices({"ann": -1.5, "bob": 2.25})
        db1.close()
        db2 = JobDatabase(path)
        assert db2.load_owner_indices() == {"ann": -1.5, "bob": 2.25}
        db2.close()

    def test_wal_and_full_sync_active(self, db):
        assert db._db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        # FULL = 2: every commit reaches disk before it is acknowledged.
        assert db._db.execute("PRAGMA synchronous").fetchone()[0] == 2


class TestQueryPlaneCompatibility:
    def test_jobs_table_tracks_lifecycle(self, db):
        key = db.submit("m:f", owner="ann", name="myjob")
        inc = db.place(key, "agent-a", 1)
        db.vacate(key)
        inc = db.place(key, "agent-b", 1)
        db.checkpoint(key, "agent-b", inc, 5)
        db.complete(key, "agent-b", inc)
        row = db._db.execute(
            "SELECT status, last_host, placements, vacates, "
            "periodic_checkpoints FROM jobs WHERE key = ?",
            (key,)).fetchone()
        assert row == ("completed", "agent-b", 2, 1, 1)

    def test_live_db_opens_in_pr9_trace_store(self, tmp_path):
        from repro.telemetry.store import TraceStore

        path = tmp_path / "svc.sqlite"
        database = JobDatabase(path)
        key = database.submit("m:f", owner="ann")
        inc = database.place(key, "a", 1)
        database.complete(key, "a", inc)
        database.close()
        store = TraceStore(path)
        columns, rows = store.query(
            "SELECT status, COUNT(*) FROM jobs GROUP BY 1")
        assert rows == [("completed", 1)]
        store.close()

    def test_raw_sqlite_readable_while_open(self, db, tmp_path):
        # Ops queries run against the live database from other processes.
        key = db.submit("m:f")
        other = sqlite3.connect(db.path)
        assert other.execute(
            "SELECT state FROM service_jobs WHERE key = ?",
            (key,)).fetchone() == ("submitted",)
        other.close()
