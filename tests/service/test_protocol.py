"""Wire-protocol tests: framing, caps, EOF discipline, endpoints."""

import socket
import struct
import threading

import pytest

from repro.service import protocol
from repro.service.errors import ProtocolError


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        try:
            protocol.send_frame(a, {"op": "ping", "n": 3})
            assert protocol.recv_frame(b) == {"op": "ping", "n": 3}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = _pair()
        try:
            for i in range(5):
                protocol.send_frame(a, {"i": i})
            assert [protocol.recv_frame(b)["i"] for _ in range(5)] == list(
                range(5))
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = _pair()
        try:
            # Announce 100 bytes, deliver 3, hang up.
            a.sendall(struct.pack(">I", 100) + b"abc")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="exceeds cap"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        a, b = _pair()
        try:
            with pytest.raises(ProtocolError, match="exceeds cap"):
                protocol.send_frame(a, {"x": "y" * protocol.MAX_FRAME})
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = _pair()
        try:
            body = b"[1,2,3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_frame_rejected(self):
        a, b = _pair()
        try:
            body = b"\xff\xfe{"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="undecodable"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()


class TestRequest:
    def test_one_shot_rpc(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        endpoint = server.getsockname()

        def serve():
            conn, _ = server.accept()
            msg = protocol.recv_frame(conn)
            protocol.send_frame(conn, {"ok": True, "echo": msg})
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            reply = protocol.request(endpoint, {"op": "ping"}, timeout=5.0)
            assert reply["ok"] and reply["echo"] == {"op": "ping"}
        finally:
            thread.join(timeout=5.0)
            server.close()

    def test_hangup_before_reply_raises(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        endpoint = server.getsockname()

        def serve():
            conn, _ = server.accept()
            protocol.recv_frame(conn)
            conn.close()    # no reply

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="before replying"):
                protocol.request(endpoint, {"op": "ping"}, timeout=5.0)
        finally:
            thread.join(timeout=5.0)
            server.close()


class TestEndpoints:
    def test_parse_endpoint(self):
        assert protocol.parse_endpoint("10.0.0.1:9618") == ("10.0.0.1",
                                                            9618)

    def test_parse_endpoints_list(self):
        assert protocol.parse_endpoints("a:1,b:2") == [("a", 1), ("b", 2)]

    @pytest.mark.parametrize("bad", ["nope", ":1", "h:", "h:abc", ""])
    def test_bad_endpoints_rejected(self, bad):
        with pytest.raises(ProtocolError):
            protocol.parse_endpoints(bad)
