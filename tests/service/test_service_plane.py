"""End-to-end service-plane tests: daemon, agents, client, recovery.

Everything here runs in-process (daemon threads + agent threads over
real localhost sockets) so the suite stays fast and debuggable; the
subprocess + real-``kill -9`` coverage lives in the live chaos suite
(``repro-condor chaos --suite service``).
"""

import socket
import time

import pytest

from repro.service import protocol
from repro.service.agent import StationAgent
from repro.service.client import ServiceClient
from repro.service.daemon import CoordinatorDaemon, StandbyCoordinator
from repro.service.errors import ServiceError
from repro.service.jobdb import JobDatabase

COUNT = "repro.service.samples:count_steps"
INSTANT = "repro.service.samples:instant"
FAILS = "repro.service.samples:always_fails"


def wait_for(predicate, timeout=10.0, poll=0.01, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out waiting for {what}")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "svc.sqlite")


@pytest.fixture
def plane(tmp_path, db_path):
    """Daemon + two agents + client, torn down in order."""
    daemon = CoordinatorDaemon(db_path, agent_timeout=1.0,
                               poll_interval=0.01)
    daemon.start()
    agents = [StationAgent(f"s{i}", [daemon.endpoint],
                           tmp_path / "ckpt", heartbeat_interval=0.02)
              for i in range(2)]
    for agent in agents:
        agent.start()
    client = ServiceClient([daemon.endpoint])
    yield daemon, agents, client
    for agent in agents:
        agent.stop()
    daemon.stop()


class FakeAgent:
    """A hand-driven agent speaking the raw protocol (no threads)."""

    def __init__(self, name, endpoint):
        self.name = name
        self.sock = socket.create_connection(endpoint, timeout=5.0)
        self.sock.settimeout(5.0)
        self.epoch = None

    def rpc(self, msg):
        protocol.send_frame(self.sock, msg)
        return protocol.recv_frame(self.sock)

    def register(self, running=()):
        reply = self.rpc({"op": "register", "agent": self.name,
                          "running": list(running)})
        if reply.get("ok"):
            self.epoch = reply["epoch"]
        return reply

    def heartbeat(self, running=(), epoch=None):
        return self.rpc({"op": "heartbeat", "agent": self.name,
                         "epoch": self.epoch if epoch is None else epoch,
                         "running": list(running)})

    def close(self):
        self.sock.close()


class TestHappyPath:
    def test_submit_runs_to_completion(self, plane):
        _daemon, _agents, client = plane
        keys = [client.submit(COUNT, payload={"steps": 20,
                                              "checkpoint_every": 5},
                              owner=f"u{i % 2}") for i in range(6)]
        snapshot = client.wait_idle(timeout=20.0, require_done=6)
        assert snapshot["done"] == 6
        states = {j["key"]: j for j in client.q()["jobs"]}
        assert all(states[k]["state"] == "done" for k in keys)
        assert all(states[k]["progress"] == 20 for k in keys)

    def test_failing_job_is_terminal_not_requeued(self, plane):
        _daemon, _agents, client = plane
        key = client.submit(FAILS, payload={"message": "by design"})
        _daemon2 = wait_for(
            lambda: _daemon.db.job(key)["state"] == "failed",
            what="job to fail")
        assert "by design" in _daemon.db.job(key)["error"]
        snapshot = client.q()
        assert snapshot["pending"] == 0

    def test_rm_stops_queued_job(self, db_path, tmp_path):
        # No agents: submissions stay queued, rm pulls one out.
        with CoordinatorDaemon(db_path, poll_interval=0.01) as daemon:
            client = ServiceClient([daemon.endpoint])
            key = client.submit(INSTANT)
            assert client.remove(key)
            assert daemon.db.job(key)["state"] == "stopped"
            assert not client.remove(key)    # already finished

    def test_drain_rejects_new_submissions(self, plane):
        _daemon, _agents, client = plane
        client.submit(INSTANT)
        client.drain()
        with pytest.raises(ServiceError, match="draining"):
            client.submit(INSTANT)

    def test_agent_checkpoints_are_incarnation_fenced(self, plane,
                                                      tmp_path):
        _daemon, agents, client = plane
        store = agents[0].store
        handle_v1 = type("H", (), {"key": "#9", "id": "9.i1",
                                   "incarnation": 1})()
        handle_v2 = type("H", (), {"key": "#9", "id": "9.i2",
                                   "incarnation": 2})()
        store.save(handle_v1, 10)
        store.save(handle_v2, 30)
        store.save(handle_v1, 20)    # zombie writes after re-placement
        # The successor resumes from its own image, not the zombie's.
        assert store.load(handle_v2) == 30
        # A fresh incarnation 3 picks the newest at-or-below image.
        handle_v3 = type("H", (), {"key": "#9", "id": "9.i3",
                                   "incarnation": 3})()
        assert store.load(handle_v3) == 30


class TestRecoveryPaths:
    def test_restart_recovers_queue_and_updown(self, db_path):
        port = free_port()
        daemon1 = CoordinatorDaemon(db_path, port=port,
                                    poll_interval=0.01)
        daemon1.start()
        client = ServiceClient([("127.0.0.1", port)], retries=40,
                               retry_cap=0.2)
        keys = [client.submit(INSTANT, owner="ann") for _ in range(3)]
        daemon1.db.save_owner_indices({"ann": -3.5, "bob": 1.25})
        daemon1.stop()

        daemon2 = CoordinatorDaemon(db_path, port=port,
                                    poll_interval=0.01)
        daemon2.start()
        try:
            # Queue recovered in order; Up-Down indices recovered too.
            assert [row[0] for row in daemon2.db.queue()] == keys
            assert daemon2.policy.index("ann") == -3.5
            assert daemon2.policy.index("bob") == 1.25
            assert daemon2.epoch == daemon1.epoch + 1
        finally:
            daemon2.stop()

    def test_restart_vacates_unclaimed_inflight_to_queue_head(
            self, db_path):
        db = JobDatabase(db_path)
        lost = db.submit("m:f", owner="ann")
        younger = db.submit("m:f", owner="ann")
        db.place(lost, "dead-agent", epoch=1)
        db.close()

        daemon = CoordinatorDaemon(db_path, poll_interval=0.01,
                                   reconcile_timeout=0.05)
        daemon.start()
        try:
            wait_for(lambda: daemon.db.job(lost)["state"] == "vacated",
                     what="unclaimed in-flight job to be vacated")
            # Head of the queue: it outranks the younger submission.
            assert [row[0] for row in daemon.db.queue()] == [lost,
                                                             younger]
        finally:
            daemon.stop()

    def test_register_adopts_matching_running_job(self, db_path):
        db = JobDatabase(db_path)
        key = db.submit("m:f", owner="ann")
        inc = db.place(key, "fake", epoch=1)
        db.close()
        daemon = CoordinatorDaemon(db_path, poll_interval=0.01,
                                   reconcile_timeout=5.0)
        daemon.start()
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            reply = fake.register(
                running=[{"key": key, "incarnation": inc, "progress": 3}])
            assert reply["ok"] and reply["drop"] == []
            # Adopted in place: still in flight, same incarnation.
            assert daemon.db.job(key)["state"] in ("placed", "running",
                                                   "checkpointed")
            assert daemon.db.job(key)["incarnation"] == inc
        finally:
            fake.close()
            daemon.stop()

    def test_register_drops_mismatched_running_job(self, db_path):
        daemon = CoordinatorDaemon(db_path, poll_interval=0.01)
        daemon.start()
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            reply = fake.register(
                running=[{"key": "#404", "incarnation": 9}])
            assert reply["ok"] and reply["drop"] == ["#404"]
        finally:
            fake.close()
            daemon.stop()

    def test_heartbeat_expiry_vacates_job(self, db_path):
        daemon = CoordinatorDaemon(db_path, agent_timeout=0.15,
                                   poll_interval=0.01)
        daemon.start()
        client = ServiceClient([daemon.endpoint])
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            fake.register()
            key = client.submit(COUNT, payload={"steps": 5})
            wait_for(lambda: daemon.db.job(key)["agent"] == "fake",
                     what="placement on the fake agent")
            # ...then the fake agent goes silent (no heartbeats).
            wait_for(lambda: daemon.db.job(key)["state"] == "vacated",
                     what="heartbeat expiry to vacate the job")
            assert daemon.db.counter("service_agent_expiries") >= 1
            assert [row[0] for row in daemon.db.queue()] == [key]
        finally:
            fake.close()
            daemon.stop()

    def test_stale_epoch_heartbeat_rejected(self, db_path):
        daemon = CoordinatorDaemon(db_path, poll_interval=0.01)
        daemon.start()
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            fake.register()
            reply = fake.heartbeat(epoch=fake.epoch - 1)
            assert not reply["ok"]
            assert reply["error"] == "stale_epoch"
            assert reply["epoch"] == daemon.epoch
            assert daemon.db.counter(
                "service_stale_epoch_rejections") >= 1
            # With the right epoch the same heartbeat is accepted.
            assert fake.heartbeat()["ok"]
        finally:
            fake.close()
            daemon.stop()

    def test_deposed_coordinator_abdicates(self, db_path):
        daemon = CoordinatorDaemon(db_path, poll_interval=0.01)
        daemon.start()
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            fake.register()
            # A newer coordinator claims the database behind its back.
            other = JobDatabase(db_path)
            other.bump_epoch()
            other.close()
            wait_for(lambda: daemon.deposed, what="abdication")
            reply = fake.heartbeat()
            assert not reply["ok"]      # deposed: fences its agents off
        finally:
            fake.close()
            daemon.stop()

    def test_resume_uses_checkpoint_after_restart(self, tmp_path,
                                                  db_path):
        # A placed job's progress must survive a coordinator restart
        # without the agent restarting from scratch.
        port = free_port()
        daemon1 = CoordinatorDaemon(db_path, port=port,
                                    poll_interval=0.01)
        daemon1.start()
        agent = StationAgent("s0", [("127.0.0.1", port)],
                             tmp_path / "ckpt", heartbeat_interval=0.02)
        agent.start()
        client = ServiceClient([("127.0.0.1", port)], retries=60,
                               retry_cap=0.2)
        try:
            key = client.submit(COUNT, payload={"steps": 400,
                                                "step_sleep": 0.003,
                                                "checkpoint_every": 5})
            wait_for(lambda: daemon1.db.job(key)["progress"] > 0,
                     what="first checkpoint")
            daemon1.stop()
            daemon2 = CoordinatorDaemon(db_path, port=port,
                                        poll_interval=0.01)
            daemon2.start()
            try:
                wait_for(lambda: daemon2.db.job(key)["state"] == "done",
                         timeout=30.0, what="completion after restart")
                record = daemon2.db.job(key)
                assert record["progress"] == 400
                assert record["incarnation"] == 1    # adopted, not redone
                assert daemon2.db.counter(
                    "service_progress_regressions") == 0
            finally:
                daemon2.stop()
        finally:
            agent.stop()


class TestFailover:
    def test_standby_promotes_and_finishes_work(self, tmp_path, db_path):
        primary_port, standby_port = free_port(), free_port()
        primary = CoordinatorDaemon(db_path, port=primary_port,
                                    poll_interval=0.01)
        primary.start()
        standby = StandbyCoordinator(
            db_path, ("127.0.0.1", primary_port), port=standby_port,
            check_interval=0.05, misses=3, poll_interval=0.01)
        standby.start()
        endpoints = [("127.0.0.1", primary_port),
                     ("127.0.0.1", standby_port)]
        agent = StationAgent("s0", endpoints, tmp_path / "ckpt",
                             heartbeat_interval=0.02)
        agent.start()
        client = ServiceClient(endpoints, retries=80, retry_cap=0.2)
        try:
            keys = [client.submit(COUNT, payload={"steps": 200,
                                                  "step_sleep": 0.002,
                                                  "checkpoint_every": 5})
                    for _ in range(2)]
            old_epoch = primary.epoch
            primary.stop()      # the standby's pings start missing
            wait_for(lambda: standby.daemon is not None, timeout=10.0,
                     what="standby promotion")
            snapshot = client.wait_idle(timeout=30.0,
                                        require_done=len(keys))
            assert snapshot["done"] == len(keys)
            assert standby.daemon.epoch > old_epoch
            db = JobDatabase(db_path)
            assert db.counter("service_promotions") == 1
            assert db.counter("service_progress_regressions") == 0
            db.close()
        finally:
            agent.stop()
            standby.stop()

    def test_agents_reject_promoted_epoch_only_briefly(self, db_path):
        # After promotion the old epoch is fenced: a heartbeat carrying
        # it gets stale_epoch and must re-register.
        daemon = CoordinatorDaemon(db_path, poll_interval=0.01,
                                   promotion=True)
        daemon.start()
        fake = FakeAgent("fake", daemon.endpoint)
        try:
            fake.register()
            stale = fake.heartbeat(epoch=fake.epoch - 1)
            assert stale["error"] == "stale_epoch"
            fake.register()
            assert fake.heartbeat()["ok"]
        finally:
            fake.close()
            daemon.stop()
