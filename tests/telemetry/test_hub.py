"""Tests for the typed telemetry hub and the EventBus shim on top."""

import pytest

from repro.core import EventBus, events
from repro.sim import SimulationError
from repro.telemetry import TelemetryHub, kinds


class TestTelemetryHub:
    def test_emit_returns_typed_event(self):
        hub = TelemetryHub(clock=lambda: 123.5)
        event = hub.emit(kinds.JOB_SUBMITTED, source="ws-1", job="j")
        assert event.seq == 0
        assert event.sim_time == 123.5
        assert event.source == "ws-1"
        assert event.kind == kinds.JOB_SUBMITTED
        assert event.payload == {"job": "j"}

    def test_seq_is_contiguous_across_kinds(self):
        hub = TelemetryHub()
        seqs = [hub.emit(kind).seq for kind in
                (kinds.JOB_SUBMITTED, kinds.JOB_PLACED, kinds.HOST_LOST)]
        assert seqs == [0, 1, 2]
        assert hub.events_emitted == 3

    def test_subscribers_receive_event_objects(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe(kinds.JOB_PLACED, seen.append)
        hub.emit(kinds.JOB_PLACED, source="h", job="j")
        hub.emit(kinds.JOB_COMPLETED, source="h", job="j")  # not subscribed
        assert [e.kind for e in seen] == [kinds.JOB_PLACED]

    def test_subscribe_all_sees_everything(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe_all(seen.append)
        hub.emit(kinds.JOB_PLACED)
        hub.emit(kinds.LEDGER_ENTRY, category="owner")
        assert [e.kind for e in seen] == [kinds.JOB_PLACED,
                                          kinds.LEDGER_ENTRY]

    def test_unsubscribe_stops_delivery(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe(kinds.JOB_PLACED, seen.append)
        assert hub.unsubscribe(kinds.JOB_PLACED, seen.append)
        hub.emit(kinds.JOB_PLACED)
        assert seen == []
        assert not hub.unsubscribe(kinds.JOB_PLACED, seen.append)

    def test_unsubscribe_all_stops_delivery(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe_all(seen.append)
        assert hub.unsubscribe_all(seen.append)
        hub.emit(kinds.JOB_PLACED)
        assert seen == []

    def test_unknown_kind_rejected(self):
        hub = TelemetryHub()
        with pytest.raises(SimulationError):
            hub.emit("job_teleported")
        with pytest.raises(SimulationError):
            hub.subscribe("job_teleported", lambda e: None)

    def test_register_kind_extends_vocabulary(self):
        hub = TelemetryHub()
        hub.register_kind("custom_kind")
        hub.emit("custom_kind", answer=42)
        assert hub.counts["custom_kind"] == 1

    def test_failing_subscriber_is_isolated(self):
        hub = TelemetryHub()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        hub.subscribe(kinds.JOB_PLACED, bad)
        hub.subscribe(kinds.JOB_PLACED, seen.append)
        event = hub.emit(kinds.JOB_PLACED, job="j")
        # The later subscriber still ran; the failure was recorded as
        # both an error record and a telemetry_error event.
        assert [e.seq for e in seen] == [event.seq]
        assert len(hub.errors) == 1
        assert hub.errors[0].kind == kinds.JOB_PLACED
        assert isinstance(hub.errors[0].error, RuntimeError)
        assert hub.counts[kinds.TELEMETRY_ERROR] == 1

    def test_failing_error_subscriber_does_not_recurse(self):
        hub = TelemetryHub()

        def bad(event):
            raise RuntimeError("boom")

        hub.subscribe_all(bad)
        hub.emit(kinds.JOB_PLACED)
        # One failure for the original event, one for the telemetry_error
        # event — and no further recursion.
        assert len(hub.errors) == 2
        assert hub.counts[kinds.TELEMETRY_ERROR] == 1

    def test_error_log_is_bounded(self):
        hub = TelemetryHub()
        hub.subscribe(kinds.JOB_PLACED, lambda e: 1 / 0)
        for _ in range(hub.MAX_ERRORS + 50):
            hub.emit(kinds.JOB_PLACED)
        assert len(hub.errors) == hub.MAX_ERRORS


class TestEventBusShim:
    def test_legacy_kwargs_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(events.JOB_SUBMITTED,
                      lambda **payload: seen.append(payload))
        bus.publish(events.JOB_SUBMITTED, job="j", station="ws-1")
        assert seen == [{"job": "j", "station": "ws-1"}]

    def test_publish_returns_typed_event(self):
        bus = EventBus()
        event = bus.publish(events.JOB_PLACED, job="j", host="h", home="m")
        assert event.kind == events.JOB_PLACED
        assert event.source == "h"
        assert event.seq == 0

    def test_unsubscribe_legacy_callback(self):
        bus = EventBus()
        seen = []

        def on_submit(**payload):
            seen.append(payload)

        bus.subscribe(events.JOB_SUBMITTED, on_submit)
        assert bus.unsubscribe(events.JOB_SUBMITTED, on_submit)
        bus.publish(events.JOB_SUBMITTED, job="j", station="s")
        assert seen == []

    def test_unsubscribe_typed_callback(self):
        bus = EventBus()
        seen = []
        bus.subscribe_event(events.JOB_SUBMITTED, seen.append)
        assert bus.unsubscribe(events.JOB_SUBMITTED, seen.append)
        bus.publish(events.JOB_SUBMITTED, job="j", station="s")
        assert seen == []

    def test_double_subscribe_then_single_unsubscribe(self):
        bus = EventBus()
        seen = []

        def on_submit(**payload):
            seen.append(payload)

        bus.subscribe(events.JOB_SUBMITTED, on_submit)
        bus.subscribe(events.JOB_SUBMITTED, on_submit)
        bus.unsubscribe(events.JOB_SUBMITTED, on_submit)
        bus.publish(events.JOB_SUBMITTED, job="j", station="s")
        assert len(seen) == 1

    def test_failing_subscriber_does_not_abort_publish(self):
        bus = EventBus()
        seen = []
        bus.subscribe(events.JOB_VACATED, lambda **kw: 1 / 0)
        bus.subscribe(events.JOB_VACATED,
                      lambda **kw: seen.append(kw))
        bus.publish(events.JOB_VACATED, job="j", host="h", reason="r")
        assert len(seen) == 1
        assert len(bus.errors) == 1

    def test_shared_hub_between_buses(self):
        hub = TelemetryHub()
        a, b = EventBus(hub=hub), EventBus(hub=hub)
        a.publish(events.JOB_SUBMITTED, job="j", station="s")
        assert b.counts[events.JOB_SUBMITTED] == 1

    def test_metrics_registry_rides_on_bus(self):
        bus = EventBus()
        bus.metrics.counter("x").inc(3)
        assert bus.hub.metrics.counter("x").value == 3


class TestDispatchFastPath:
    """The precomputed per-kind dispatch table behind emit()/wants()."""

    def test_wants_reflects_targeted_subscription(self):
        hub = TelemetryHub()
        assert not hub.wants(kinds.LEDGER_ENTRY)
        callback = lambda event: None  # noqa: E731
        hub.subscribe(kinds.LEDGER_ENTRY, callback)
        assert hub.wants(kinds.LEDGER_ENTRY)
        assert not hub.wants(kinds.JOB_SUBMITTED)
        hub.unsubscribe(kinds.LEDGER_ENTRY, callback)
        assert not hub.wants(kinds.LEDGER_ENTRY)

    def test_wants_reflects_catch_all(self):
        hub = TelemetryHub()
        recorder = lambda event: None  # noqa: E731
        hub.subscribe_all(recorder)
        assert hub.wants(kinds.LEDGER_ENTRY)
        assert hub.wants(kinds.JOB_SUBMITTED)
        hub.unsubscribe_all(recorder)
        assert not hub.wants(kinds.LEDGER_ENTRY)

    def test_wants_unknown_kind_false(self):
        hub = TelemetryHub()
        assert not hub.wants("never_registered")

    def test_register_kind_updates_dispatch(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe_all(seen.append)
        hub.register_kind("custom_kind")
        assert hub.wants("custom_kind")
        hub.emit("custom_kind")
        assert [event.kind for event in seen] == ["custom_kind"]

    def test_emit_with_no_subscribers_still_counts(self):
        # The zero-subscriber fast path must preserve the seq/counts
        # contract the trace replayer relies on.
        hub = TelemetryHub()
        first = hub.emit(kinds.JOB_SUBMITTED, source="a", job=1)
        second = hub.emit(kinds.JOB_COMPLETED, source="b")
        assert (first.seq, second.seq) == (0, 1)
        assert hub.counts[kinds.JOB_SUBMITTED] == 1
        assert hub.events_emitted == 2

    def test_subscription_during_emit_affects_next_emit_only(self):
        hub = TelemetryHub()
        seen = []

        def late_subscriber(event):
            seen.append(("late", event.seq))

        def first_subscriber(event):
            seen.append(("first", event.seq))
            hub.subscribe(kinds.JOB_SUBMITTED, late_subscriber)

        hub.subscribe(kinds.JOB_SUBMITTED, first_subscriber)
        hub.emit(kinds.JOB_SUBMITTED)
        hub.unsubscribe(kinds.JOB_SUBMITTED, first_subscriber)
        hub.emit(kinds.JOB_SUBMITTED)
        assert seen == [("first", 0), ("late", 1)]

    def test_ledger_skips_hub_when_nobody_listens(self):
        from repro.machine.accounting import REMOTE_JOB, CpuLedger
        from repro.sim import Simulation

        sim = Simulation()
        hub = TelemetryHub()
        ledger = CpuLedger(sim, station_name="ws-1", hub=hub)
        ledger.charge(REMOTE_JOB, 5.0)
        assert hub.events_emitted == 0          # skipped entirely
        seen = []
        hub.subscribe(kinds.LEDGER_ENTRY, seen.append)
        ledger.charge(REMOTE_JOB, 5.0)
        assert hub.events_emitted == 1
        assert seen[0].payload["booked"] == 5.0
