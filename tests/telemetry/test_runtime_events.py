"""The live runtime speaks the same telemetry vocabulary as the simulator."""

import time

from repro.runtime import LiveCluster
from repro.telemetry import TelemetryHub, kinds


def _wait_for(predicate, timeout=10.0):
    """Poll until ``predicate()`` is truthy.  Worker threads signal job
    completion a hair before their final telemetry lands, so assertions
    on counts must tolerate that last few-microsecond window."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return bool(predicate())


def test_live_cluster_emits_shared_kinds():
    hub = TelemetryHub()
    seen = []
    hub.subscribe_all(seen.append)

    def quick_job(ctx, state):
        return (state or {}).get("x", 0) + 1

    with LiveCluster(["w1", "w2"], hub=hub) as cluster:
        cluster.submit(quick_job, name="t1", owner="alice")
        cluster.submit(quick_job, name="t2", owner="bob")
        assert cluster.wait_all(timeout=10.0)
        assert _wait_for(lambda: hub.counts[kinds.JOB_COMPLETED] == 2)

    assert hub.counts[kinds.JOB_SUBMITTED] == 2
    assert hub.counts[kinds.JOB_PLACED] >= 2
    assert hub.metrics.counter("live.submitted").value == 2
    assert _wait_for(
        lambda: hub.metrics.counter("live.completed").value == 2)
    # Every emitted kind belongs to the canonical vocabulary shared
    # with the simulated scheduler.
    assert {e.kind for e in seen} <= set(kinds.ALL_KINDS)


def test_owner_presence_and_vacate_events():
    hub = TelemetryHub()

    def stubborn(ctx, state):
        n = state or 0
        while n < 200:
            n += 1
            ctx.checkpoint(n)
            time.sleep(0.005)
        return n

    with LiveCluster(["solo"], poll_interval=0.01, hub=hub) as cluster:
        worker = cluster.workers["solo"]
        cluster.submit(stubborn, name="s", owner="carol")
        assert _wait_for(lambda: worker.busy)
        worker.owner_arrived()
        assert _wait_for(lambda: hub.counts[kinds.JOB_VACATED] >= 1)
        worker.owner_departed()
        assert cluster.wait_all(timeout=30.0)
        assert _wait_for(lambda: hub.counts[kinds.JOB_COMPLETED] == 1)

    assert hub.counts[kinds.OWNER_ARRIVED] == 1
    assert hub.counts[kinds.OWNER_DEPARTED] == 1
    assert hub.counts[kinds.JOB_PLACED] >= 2  # resumed after the vacate


def test_failed_job_reports_error_event():
    hub = TelemetryHub()
    failures = []
    hub.subscribe(kinds.JOB_FAILED, failures.append)

    def broken(ctx, state):
        raise ValueError("bad input")

    with LiveCluster(["w1"], hub=hub) as cluster:
        cluster.submit(broken, name="b", owner="dave")
        cluster.wait_all(timeout=10.0)
        assert _wait_for(lambda: hub.counts[kinds.JOB_FAILED] == 1)

    assert failures[0].payload["error"] == "ValueError: bad input"
    assert _wait_for(lambda: hub.metrics.counter("live.failed").value == 1)
