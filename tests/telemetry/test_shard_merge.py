"""Edge cases of the keyed shard-trace merge.

The space-parallel path (PR 6) is exercised end-to-end by
``tests/analysis/test_shardrun.py``; these tests pin the merge layer
itself on degenerate inputs — empty shard files, blank-line-only files,
and the single-shard case, whose merge must be byte-identical to what
the serial :class:`TraceRecorder` writes for the same event stream.
"""

from types import SimpleNamespace

import pytest

from repro.telemetry import TelemetryHub, TraceRecorder, kinds
from repro.telemetry.trace import (
    ShardTraceRecorder,
    merge_shard_lines,
    merge_shard_traces,
)


@pytest.fixture
def recorded(tmp_path):
    """One key-sorted event stream recorded both ways.

    The hub feeds a serial :class:`TraceRecorder` (global seqs) and a
    :class:`ShardTraceRecorder` (keyed lines) simultaneously; emissions
    are issued in (t, locus) key order, as the locus-mode kernel
    dispatches them.
    """
    clock = SimpleNamespace(now=0.0)
    sim = SimpleNamespace(current_locus=0)
    hub = TelemetryHub(clock=lambda: clock.now)
    serial_path = tmp_path / "serial.jsonl"
    shard_path = tmp_path / "shard-0.jsonl"
    serial = TraceRecorder(hub, str(serial_path))
    shard = ShardTraceRecorder(hub, sim, str(shard_path))

    def emit(t, locus, kind, **payload):
        clock.now = t
        sim.current_locus = locus
        hub.emit(kind, source=f"st-{locus}", **payload)

    emit(0.0, 0, kinds.JOB_SUBMITTED,
         job={"id": 1, "user": "A"}, station="st-0")
    emit(0.0, 0, kinds.COORDINATOR_CYCLE, wanting=["st-0"])
    emit(0.0, 1, kinds.JOB_SUBMITTED,
         job={"id": 2, "user": "B"}, station="st-1")
    emit(5.0, 0, kinds.JOB_PLACED, job={"id": 1}, host="st-1")
    emit(5.0, 2, kinds.LEDGER_ENTRY, category="owner",
         t0=0.0, t1=5.0, fraction=1.0, booked=5.0)
    emit(9.0, 1, kinds.JOB_COMPLETED, job={"id": 2}, station="st-1")
    serial.close()
    shard.close()
    return serial_path, shard_path


def test_single_shard_merge_is_byte_identical_to_serial(recorded,
                                                        tmp_path):
    serial_path, shard_path = recorded
    out = tmp_path / "merged.jsonl"
    written = merge_shard_traces([str(shard_path)], str(out))
    assert written == 6
    assert out.read_bytes() == serial_path.read_bytes()


def test_empty_shard_file_merges_cleanly(recorded, tmp_path):
    serial_path, shard_path = recorded
    empty = tmp_path / "shard-1.jsonl"
    empty.write_bytes(b"")
    out = tmp_path / "merged.jsonl"
    written = merge_shard_traces([str(shard_path), str(empty)],
                                 str(out))
    assert written == 6
    assert out.read_bytes() == serial_path.read_bytes()


def test_blank_lines_only_shard_contributes_nothing(recorded, tmp_path):
    serial_path, shard_path = recorded
    blanks = tmp_path / "shard-1.jsonl"
    blanks.write_text("\n\n  \n\n", encoding="utf-8")
    out = tmp_path / "merged.jsonl"
    written = merge_shard_traces([str(shard_path), str(blanks)],
                                 str(out))
    assert written == 6
    assert out.read_bytes() == serial_path.read_bytes()


def test_all_empty_shards_produce_empty_trace(tmp_path):
    empties = []
    for index in range(2):
        path = tmp_path / f"shard-{index}.jsonl"
        path.write_bytes(b"")
        empties.append(str(path))
    out = tmp_path / "merged.jsonl"
    assert merge_shard_traces(empties, str(out)) == 0
    assert out.read_bytes() == b""


def test_merge_no_lines_at_all():
    assert merge_shard_lines([]) == []
    assert merge_shard_lines([[], []]) == []
