"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.sim import SimulationError
from repro.telemetry import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("jobs")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("jobs")
        with pytest.raises(SimulationError):
            counter.inc(-1)


class TestGauge:
    def test_tracks_last_value(self):
        gauge = MetricsRegistry().gauge("queue")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5
        assert gauge.updates == 2


class TestHistogram:
    def test_streaming_statistics(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == 4.0

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("latency")
        assert hist.count == 0
        assert hist.mean is None
        assert hist.min is None
        assert hist.max is None


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(SimulationError):
            registry.gauge("a")
        with pytest.raises(SimulationError):
            registry.histogram("a")

    def test_get_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert registry.get("b").value == 0
        assert registry.get("missing") is None

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 1.5, "updates": 1}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert snap["h"]["sum"] == 3.0
        assert snap["h"]["mean"] == 3.0


class TestRegistryThreadSafety:
    """snapshot()/names() must hold the registry lock while reading:
    the live runtime's worker threads create instruments on first use,
    and an unlocked dict iteration races those inserts (RuntimeError:
    dictionary changed size during iteration)."""

    def test_snapshot_during_concurrent_first_use(self):
        import threading

        registry = MetricsRegistry()
        done = threading.Event()
        failures = []

        def churn(worker):
            for index in range(400):
                registry.counter(f"w{worker}.c{index}").inc()

        def observe():
            while not done.is_set():
                try:
                    registry.snapshot()
                    registry.names()
                    len(registry)
                except RuntimeError as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        watcher = threading.Thread(target=observe, daemon=True)
        workers = [threading.Thread(target=churn, args=(i,), daemon=True)
                   for i in range(4)]
        watcher.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30.0)
        done.set()
        watcher.join(timeout=30.0)
        assert not failures
        assert len(registry) == 4 * 400
        assert len(registry.snapshot()) == 4 * 400
