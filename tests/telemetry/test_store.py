"""Tests for the sqlite ops plane (:mod:`repro.telemetry.store`).

The invariants under test:

* **faithfulness** — ``store.summary().headline()`` equals
  ``replay_trace(path).headline()`` bit-for-bit;
* **idempotence** — re-ingesting the same trace is an exact no-op;
* **resumability** — ingesting a prefix and then the full trace gives
  the same store as one-shot ingestion;
* **loudness** — gapped or head-truncated traces fail ingestion.
"""

import json

import pytest

from repro.analysis.experiment import ExperimentRun
from repro.core.job import reset_job_ids
from repro.sim import SimulationError
from repro.telemetry import kinds, read_trace, replay_trace
from repro.telemetry.store import TraceStore, ingest_trace

SEED = 42
DAYS = 2


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "month.jsonl"
    reset_job_ids()
    run = ExperimentRun(seed=SEED, days=DAYS,
                        trace_path=str(path)).execute()
    return run, path


@pytest.fixture(scope="module")
def store(recorded, tmp_path_factory):
    _run, path = recorded
    db = tmp_path_factory.mktemp("ops") / "ops.sqlite"
    store, added = ingest_trace(str(path), str(db))
    assert added > 0
    yield store
    store.close()


class TestFaithfulness:
    def test_headline_bit_for_bit(self, recorded, store):
        _run, path = recorded
        assert store.summary().headline() == replay_trace(path).headline()

    def test_event_counts_match(self, recorded, store):
        run, _path = recorded
        summary = store.summary()
        emitted = {kind: count
                   for kind, count in run.telemetry.counts.items()
                   if count}
        assert summary.event_counts == emitted

    def test_events_table_is_verbatim(self, recorded, store):
        _run, path = recorded
        records = list(read_trace(path))
        _cols, rows = store.query(
            "SELECT COUNT(*), MIN(seq), MAX(seq) FROM events")
        assert rows[0] == (len(records), 0, len(records) - 1)
        _cols, sample = store.query(
            "SELECT payload FROM events WHERE seq = 0")
        assert json.loads(sample[0][0]) == records[0]["payload"]

    def test_job_lifecycle_rollup(self, recorded, store):
        run, _path = recorded
        _cols, rows = store.query(
            "SELECT COUNT(*), SUM(status = 'completed'), "
            "SUM(placements), SUM(vacates) FROM jobs")
        jobs, completed, placements, vacates = rows[0]
        assert jobs == len(run.jobs)
        assert completed == len(run.completed_jobs)
        assert placements == run.telemetry.counts[kinds.JOB_PLACED]
        assert vacates == sum(j.checkpoint_count for j in run.jobs)

    def test_utilization_buckets_cover_ledger(self, store):
        # The hourly heatmap splits exactly the booked seconds, so the
        # two tables agree per station+category to float tolerance.
        _cols, rows = store.query(
            "SELECT l.station, l.category, l.seconds, "
            "(SELECT SUM(u.seconds) FROM utilization u "
            " WHERE u.station = l.station AND u.category = l.category) "
            "FROM ledger l")
        assert rows
        for _station, _category, booked, bucketed in rows:
            assert bucketed == pytest.approx(booked, rel=1e-9)


class TestIngestCursor:
    def test_reingest_is_noop(self, recorded, store):
        _run, path = recorded
        before = store.row_counts()
        assert store.ingest_file(str(path)) == 0
        assert store.row_counts() == before

    def test_resumable_ingest_matches_one_shot(self, recorded, store,
                                               tmp_path):
        _run, path = recorded
        records = list(read_trace(path))
        split = len(records) // 2
        resumed = TraceStore(str(tmp_path / "resumed.sqlite"))
        assert resumed.ingest(iter(records[:split])) == split
        # Extending the same stream picks up exactly where it left off
        # (records below the cursor are skipped).
        assert resumed.ingest(iter(records)) == len(records) - split
        counts = {table: rows for table, rows
                  in resumed.row_counts().items() if table != "meta"}
        expected = {table: rows for table, rows
                    in store.row_counts().items() if table != "meta"}
        assert counts == expected
        assert (resumed.summary().headline()
                == store.summary().headline())
        resumed.close()

    def test_gap_rejected(self, recorded, tmp_path):
        _run, path = recorded
        records = list(read_trace(path))
        del records[5]
        fresh = TraceStore(str(tmp_path / "gap.sqlite"))
        with pytest.raises(SimulationError, match="non-contiguous"):
            fresh.ingest(iter(records))
        # The failed transaction rolled back entirely.
        assert fresh.next_seq == 0
        assert fresh.row_counts()["events"] == 0
        fresh.close()

    def test_head_truncation_rejected(self, recorded, tmp_path):
        _run, path = recorded
        records = list(read_trace(path))
        fresh = TraceStore(str(tmp_path / "head.sqlite"))
        with pytest.raises(SimulationError, match="head-truncated"):
            fresh.ingest(iter(records[100:]))
        fresh.close()

    def test_schema_version_checked(self, tmp_path):
        db = str(tmp_path / "v0.sqlite")
        store = TraceStore(db)
        store.connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        store.connection.commit()
        store.close()
        with pytest.raises(SimulationError, match="schema"):
            TraceStore(db)


def _record(seq, t, src, kind, **payload):
    return {"seq": seq, "t": t, "src": src, "kind": kind,
            "payload": payload}


class TestLeaseAndFaultTables:
    """Synthetic streams pin the normalized lease/fault lifecycles."""

    def test_lease_lifecycle(self, tmp_path):
        job = {"id": 1, "name": "j", "user": "A", "home": "h0",
               "demand_seconds": 10.0}
        records = [
            _record(0, 0.0, "h0", kinds.JOB_SUBMITTED, job=job,
                    station="h0"),
            _record(1, 1.0, "coordinator.1",
                    kinds.CROSS_POOL_LEASE_GRANTED,
                    station="coordinator.1", lease_id="lease-1",
                    borrower="coordinator.0", stations=["h4", "h5"],
                    expires_at=50.0),
            _record(2, 9.0, "h5", kinds.CROSS_POOL_LEASE_RETURNED,
                    station="h5", lease_id="lease-1", pool=0,
                    reason="owner_return"),
            _record(3, 60.0, "h4", kinds.CROSS_POOL_LEASE_EXPIRED,
                    station="h4", lease_id="lease-1",
                    borrower="coordinator.0"),
        ]
        with TraceStore(str(tmp_path / "leases.sqlite")) as store:
            assert store.ingest(iter(records)) == 4
            _cols, rows = store.query(
                "SELECT station, lender, borrower, granted_t, "
                "returned_t, return_reason, expired_t FROM leases "
                "ORDER BY station")
            assert rows == [
                ("h4", "coordinator.1", "coordinator.0", 1.0,
                 None, None, 60.0),
                ("h5", "coordinator.1", "coordinator.0", 1.0,
                 9.0, "owner_return", None),
            ]

    def test_fault_rows(self, tmp_path):
        records = [
            _record(0, 0.0, "", kinds.FAULT_INJECTED,
                    fault="station_crash", station="h2"),
            _record(1, 5.0, "", kinds.FAULT_CLEARED,
                    fault="station_crash", station="h2"),
            _record(2, 6.0, "h1", kinds.MESSAGE_RETRY, station="h1",
                    dst="coordinator", op="state_update", attempt=2),
        ]
        with TraceStore(str(tmp_path / "faults.sqlite")) as store:
            assert store.ingest(iter(records)) == 3
            _cols, rows = store.query(
                "SELECT seq, kind, fault, target FROM faults "
                "ORDER BY seq")
            assert rows == [
                (0, kinds.FAULT_INJECTED, "station_crash", "h2"),
                (1, kinds.FAULT_CLEARED, "station_crash", "h2"),
                (2, kinds.MESSAGE_RETRY, None, "h1"),
            ]


class TestReports:
    def test_every_canned_report_renders(self, store, recorded):
        from repro.analysis.ops import REPORTS
        from repro.metrics.report import render_table

        for name, report in REPORTS.items():
            headers, rows, title = report(store, None)
            text = render_table(headers, rows, title=title)
            assert headers and title
            assert isinstance(text, str)

    def test_fair_share_covers_every_user(self, store, recorded):
        from repro.analysis.ops import report_fair_share

        run, _path = recorded
        _headers, rows, _title = report_fair_share(store, None)
        assert {row[0] for row in rows} == {j.user for j in run.jobs}
        assert sum(row[1] for row in rows) == len(run.jobs)

    def test_sql_escape_hatch(self, store):
        columns, rows = store.query(
            "SELECT kind, count FROM event_counts ORDER BY count DESC")
        assert columns == ["kind", "count"]
        assert rows and rows[0][1] >= rows[-1][1]
