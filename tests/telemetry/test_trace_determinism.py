"""Determinism + replay tests for the JSONL telemetry trace.

The two properties the telemetry spine promises:

* same seed ⇒ byte-identical trace across two independent runs;
* replaying a recorded trace reconstructs the run's headline metrics
  (Table-1 job totals, checkpoint counts, ledger hours, event counts)
  without re-simulating.
"""

import pytest

from repro.analysis.experiment import ExperimentRun
from repro.core.job import reset_job_ids
from repro.telemetry import kinds, read_trace, replay_trace, summarize_trace
from repro.telemetry.trace import encode_event

SEED = 42
DAYS = 2


def _run(trace_path):
    reset_job_ids()
    return ExperimentRun(seed=SEED, days=DAYS,
                         trace_path=str(trace_path)).execute()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "month.jsonl"
    run = _run(path)
    return run, path


class TestByteIdentity:
    def test_same_seed_same_bytes(self, recorded, tmp_path):
        _, first_path = recorded
        second_path = tmp_path / "again.jsonl"
        _run(second_path)
        first = first_path.read_bytes()
        assert first == second_path.read_bytes()
        assert len(first) > 0

    def test_lines_are_canonical_json(self, recorded):
        _, path = recorded
        with open(path, encoding="utf-8") as fh:
            lines = [line.rstrip("\n") for line in fh]
        records = list(read_trace(path))
        assert len(records) == len(lines)
        # Re-encoding every record reproduces the file line exactly.
        for line, record in zip(lines, records):
            class _Event:
                seq = record["seq"]
                sim_time = record["t"]
                source = record["src"]
                kind = record["kind"]
                payload = record["payload"]

            assert encode_event(_Event()) == line


class TestReplay:
    def test_job_totals_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        assert summary.jobs_submitted == len(run.jobs)
        assert summary.jobs_completed == len(run.completed_jobs)

    def test_checkpoint_counts_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        vacates = sum(j.checkpoint_count for j in run.jobs)
        periodics = sum(j.periodic_checkpoint_count for j in run.jobs)
        assert summary.event_counts.get(kinds.JOB_VACATED, 0) == vacates
        assert summary.event_counts.get(
            kinds.JOB_PERIODIC_CHECKPOINT, 0) == periodics
        assert summary.checkpoints == vacates + periodics

    def test_event_counts_match_hub(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        emitted = {kind: count
                   for kind, count in run.telemetry.counts.items()
                   if count}
        assert summary.event_counts == emitted
        assert summary.events_total == run.telemetry.events_emitted

    def test_ledger_hours_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        assert summary.remote_hours == pytest.approx(
            run.util.remote_hours(), rel=1e-9)
        assert summary.local_hours == pytest.approx(
            run.util.local_hours(), rel=1e-9)
        assert summary.support_hours == pytest.approx(
            run.util.support_hours(), rel=1e-9)

    def test_demand_hours_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        expected = sum(j.demand_seconds for j in run.jobs) / 3600.0
        assert summary.total_demand_hours == pytest.approx(expected,
                                                           rel=1e-12)

    def test_seq_is_contiguous(self, recorded):
        _, path = recorded
        records = list(read_trace(path))
        assert [r["seq"] for r in records] == list(range(len(records)))
        # summarize_trace applies the same check internally.
        summarize_trace(iter(records))

    def test_gap_detection(self, recorded):
        from repro.sim import SimulationError

        _, path = recorded
        records = list(read_trace(path))
        del records[5]
        with pytest.raises(SimulationError):
            summarize_trace(iter(records))

    def test_headline_is_plain_data(self, recorded):
        _, path = recorded
        head = replay_trace(path).headline()
        for key in ("events", "jobs_submitted", "jobs_completed",
                    "checkpoints", "total_demand_hours", "remote_hours",
                    "local_hours", "support_hours", "end_time_days"):
            assert isinstance(head[key], (int, float)), key
