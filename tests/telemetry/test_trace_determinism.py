"""Determinism + replay tests for the JSONL telemetry trace.

The two properties the telemetry spine promises:

* same seed ⇒ byte-identical trace across two independent runs;
* replaying a recorded trace reconstructs the run's headline metrics
  (Table-1 job totals, checkpoint counts, ledger hours, event counts)
  without re-simulating.
"""

import json

import pytest

from repro.analysis.experiment import ExperimentRun
from repro.core.job import reset_job_ids
from repro.telemetry import kinds, read_trace, replay_trace, summarize_trace
from repro.telemetry.trace import encode_event

SEED = 42
DAYS = 2


def _run(trace_path):
    reset_job_ids()
    return ExperimentRun(seed=SEED, days=DAYS,
                         trace_path=str(trace_path)).execute()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "month.jsonl"
    run = _run(path)
    return run, path


class TestByteIdentity:
    def test_same_seed_same_bytes(self, recorded, tmp_path):
        _, first_path = recorded
        second_path = tmp_path / "again.jsonl"
        _run(second_path)
        first = first_path.read_bytes()
        assert first == second_path.read_bytes()
        assert len(first) > 0

    def test_lines_are_canonical_json(self, recorded):
        _, path = recorded
        with open(path, encoding="utf-8") as fh:
            lines = [line.rstrip("\n") for line in fh]
        records = list(read_trace(path))
        assert len(records) == len(lines)
        # Re-encoding every record reproduces the file line exactly.
        for line, record in zip(lines, records):
            class _Event:
                seq = record["seq"]
                sim_time = record["t"]
                source = record["src"]
                kind = record["kind"]
                payload = record["payload"]

            assert encode_event(_Event()) == line


class TestReplay:
    def test_job_totals_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        assert summary.jobs_submitted == len(run.jobs)
        assert summary.jobs_completed == len(run.completed_jobs)

    def test_checkpoint_counts_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        vacates = sum(j.checkpoint_count for j in run.jobs)
        periodics = sum(j.periodic_checkpoint_count for j in run.jobs)
        assert summary.event_counts.get(kinds.JOB_VACATED, 0) == vacates
        assert summary.event_counts.get(
            kinds.JOB_PERIODIC_CHECKPOINT, 0) == periodics
        assert summary.checkpoints == vacates + periodics

    def test_event_counts_match_hub(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        emitted = {kind: count
                   for kind, count in run.telemetry.counts.items()
                   if count}
        assert summary.event_counts == emitted
        assert summary.events_total == run.telemetry.events_emitted

    def test_ledger_hours_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        assert summary.remote_hours == pytest.approx(
            run.util.remote_hours(), rel=1e-9)
        assert summary.local_hours == pytest.approx(
            run.util.local_hours(), rel=1e-9)
        assert summary.support_hours == pytest.approx(
            run.util.support_hours(), rel=1e-9)

    def test_demand_hours_match(self, recorded):
        run, path = recorded
        summary = replay_trace(path)
        expected = sum(j.demand_seconds for j in run.jobs) / 3600.0
        assert summary.total_demand_hours == pytest.approx(expected,
                                                           rel=1e-12)

    def test_seq_is_contiguous(self, recorded):
        _, path = recorded
        records = list(read_trace(path))
        assert [r["seq"] for r in records] == list(range(len(records)))
        # summarize_trace applies the same check internally.
        summarize_trace(iter(records))

    def test_gap_detection(self, recorded):
        from repro.sim import SimulationError

        _, path = recorded
        records = list(read_trace(path))
        del records[5]
        with pytest.raises(SimulationError,
                           match=r"1 sequence gap\(s\)"):
            summarize_trace(iter(records))

    def test_head_truncation_detected(self, recorded):
        """A trace whose first seq is not 0 is incomplete even though
        the remaining seqs are perfectly consecutive."""
        from repro.sim import SimulationError

        _, path = recorded
        records = list(read_trace(path))
        with pytest.raises(SimulationError, match="head-truncated"):
            summarize_trace(iter(records[100:]))

    def test_head_truncation_message_reports_span(self, recorded):
        from repro.sim import SimulationError

        _, path = recorded
        records = list(read_trace(path))
        tail = records[500:]
        with pytest.raises(SimulationError) as excinfo:
            summarize_trace(iter(tail))
        message = str(excinfo.value)
        assert "first seq 500" in message
        assert f"last seq {tail[-1]['seq']}" in message
        assert "0 sequence gap(s)" in message

    def test_empty_trace_is_contiguous(self):
        summary = summarize_trace(iter([]))
        assert summary.events_total == 0
        assert summary.first_seq is None


class TestJsonifySets:
    """Sets are encoded by sorting the canonical JSON of their members,
    so mixed-type and dict-producing members never raise and the bytes
    are stable across insertion (hash) orders."""

    def test_mixed_type_set_is_byte_stable(self):
        from repro.telemetry import jsonify

        value = {1, "a", 2.5, None, False, ("x", 3)}
        encoded = json.dumps(jsonify(value), sort_keys=True,
                             separators=(",", ":"))
        assert encoded == '["a",1,2.5,["x",3],false,null]'

    def test_set_of_job_like_objects(self):
        from repro.telemetry import jsonify

        class FakeJob:
            def __init__(self, id, user):
                self.id = id
                self.user = user

        value = {FakeJob(2, "B"), FakeJob(1, "A"), FakeJob(10, "A")}
        assert jsonify(value) == [
            {"id": 1, "user": "A"},
            {"id": 10, "user": "A"},
            {"id": 2, "user": "B"},
        ]

    def test_insertion_order_independent(self):
        from repro.telemetry import jsonify

        members = [("host", index) for index in range(20)]
        members += [f"station-{index}" for index in range(20)]
        forward, backward = set(), set()
        for member in members:
            forward.add(member)
        for member in reversed(members):
            backward.add(member)
        assert jsonify(forward) == jsonify(backward)

    def test_scalar_sets_still_sorted_deterministically(self):
        from repro.telemetry import jsonify

        # Canonical-encoding order, applied uniformly (lexicographic on
        # the JSON text, so 10 < 2 here) — what matters is that the same
        # set always produces the same bytes.
        assert jsonify({2, 10}) == [10, 2]
        assert jsonify(frozenset({"b", "a"})) == ["a", "b"]

    def test_headline_is_plain_data(self, recorded):
        _, path = recorded
        head = replay_trace(path).headline()
        for key in ("events", "jobs_submitted", "jobs_completed",
                    "checkpoints", "total_demand_hours", "remote_hours",
                    "local_hours", "support_hours", "end_time_days"):
            assert isinstance(head[key], (int, float)), key
