"""Tests for segments, checkpoints, and shadow syscall accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import SYSCALL, CpuLedger, Disk
from repro.remote_unix import (
    CHECKPOINT_CPU_S_PER_MB,
    LOCAL_SYSCALL_CPU_S,
    REMOTE_SYSCALL_CPU_S,
    CheckpointImage,
    CheckpointStore,
    SegmentLayout,
    ShadowProcess,
    breakeven_syscall_rate,
    checkpoint_cpu_cost,
    remote_syscall_load,
    typical_layout,
)
from repro.sim import RandomStream, Simulation, SimulationError


class TestSegments:
    def test_initial_size_is_segment_sum(self):
        layout = SegmentLayout(100, 200, 50, 30)
        assert layout.initial_kb == 380

    def test_image_grows_with_progress(self):
        layout = SegmentLayout(100, 200, 50, 30, data_growth_kb_per_cpu_hour=60)
        assert layout.image_mb(3600.0) > layout.image_mb(0.0)
        grown_kb = layout.image_mb(3600.0) * 1024 - layout.initial_kb
        assert grown_kb == pytest.approx(60.0)

    def test_text_exclusion_models_shared_text(self):
        layout = SegmentLayout(100, 200, 50, 30)
        saved = layout.image_mb(0.0) - layout.image_mb(0.0, include_text=False)
        assert saved == pytest.approx(100 / 1024)

    def test_negative_sizes_rejected(self):
        with pytest.raises(SimulationError):
            SegmentLayout(-1, 0, 0, 0)

    def test_negative_progress_rejected(self):
        layout = SegmentLayout(10, 10, 10, 10)
        with pytest.raises(SimulationError):
            layout.image_mb(-5.0)

    def test_typical_layout_averages_half_mb(self):
        stream = RandomStream(11, "layout")
        sizes = [typical_layout(stream).image_mb() for _ in range(3000)]
        assert sum(sizes) / len(sizes) == pytest.approx(0.5, abs=0.03)

    def test_typical_layout_deterministic_without_stream(self):
        assert typical_layout().image_mb() == pytest.approx(0.5)


class TestCheckpointCosts:
    def test_paper_headline_cost(self):
        # 0.5 MB average image -> ~2.5 s of home CPU (paper 3.1).
        assert checkpoint_cpu_cost(0.5) == pytest.approx(2.5)

    def test_cost_scales_linearly(self):
        assert checkpoint_cpu_cost(2.0) == 2 * checkpoint_cpu_cost(1.0)

    def test_cost_constant_is_five(self):
        assert CHECKPOINT_CPU_S_PER_MB == 5.0

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            checkpoint_cpu_cost(-0.1)


class TestCheckpointStore:
    def make_store(self, capacity=10.0):
        return CheckpointStore(Disk(capacity))

    def image(self, job_id="j1", progress=100.0, size=0.5, seq=1):
        return CheckpointImage(job_id, progress, size, taken_at=0.0,
                               sequence=seq)

    def test_store_and_fetch(self):
        store = self.make_store()
        image = self.image()
        store.store(image)
        assert store.fetch("j1") is image

    def test_new_image_supersedes_old(self):
        store = self.make_store()
        store.store(self.image(progress=100.0, size=2.0, seq=1))
        store.store(self.image(progress=200.0, size=3.0, seq=2))
        assert store.fetch("j1").cpu_progress == 200.0
        assert store.disk.used_mb == pytest.approx(3.0)
        assert len(store) == 1

    def test_discard_releases_space(self):
        store = self.make_store()
        store.store(self.image(size=4.0))
        store.discard("j1")
        assert store.fetch("j1") is None
        assert store.disk.used_mb == 0.0

    def test_discard_unknown_is_noop(self):
        self.make_store().discard("ghost")

    def test_can_store_is_two_phase(self):
        store = self.make_store(capacity=5.0)
        store.store(self.image(size=4.0))
        # Two-phase write: the new image needs free space while the old
        # generation is still held, so 4 MB held + 1 MB free fits neither.
        assert not store.can_store("j1", 4.5)
        assert not store.can_store("j2", 4.5)
        assert store.can_store("j1", 1.0)

    def test_supersede_charges_both_images_transiently(self):
        store = self.make_store(capacity=5.0)
        store.store(self.image(size=3.0, seq=1))
        with pytest.raises(SimulationError):
            store.store(self.image(progress=200.0, size=2.5, seq=2))
        # The failed write lost nothing: the old image is still stored.
        assert store.fetch("j1").cpu_progress == 100.0
        assert store.disk.used_mb == pytest.approx(3.0)

    def test_images_stored_counter(self):
        store = self.make_store()
        store.store(self.image(seq=1))
        store.store(self.image(seq=2))
        assert store.images_stored == 2

    def test_bad_image_rejected(self):
        with pytest.raises(SimulationError):
            CheckpointImage("j", -1.0, 0.5, 0.0, 1)

    def test_generations_assigned_monotonically(self):
        store = self.make_store()
        store.store(self.image(seq=1))
        store.store(self.image(progress=200.0, seq=2))
        assert store.fetch("j1").generation == 2
        store.discard("j1")
        store.store(self.image(progress=300.0, seq=3))
        # Counter is per job and survives discards (no generation reuse).
        assert store.fetch("j1").generation == 3

    def test_multiple_generations_kept(self):
        store = CheckpointStore(Disk(10.0), generations=2)
        store.store(self.image(progress=100.0, size=1.0, seq=1))
        store.store(self.image(progress=200.0, size=1.0, seq=2))
        store.store(self.image(progress=300.0, size=1.0, seq=3))
        kept = [img.cpu_progress for img in store.generations_of("j1")]
        assert kept == [300.0, 200.0]
        assert store.disk.used_mb == pytest.approx(2.0)

    def test_generations_must_be_positive(self):
        with pytest.raises(SimulationError):
            CheckpointStore(Disk(10.0), generations=0)

    def test_verify_detects_corruption(self):
        image = self.image()
        assert image.verify()
        image.corrupt()
        assert not image.verify()
        image.corrupt()      # XOR flip is its own inverse
        assert image.verify()

    def test_fetch_verified_falls_back_a_generation(self):
        store = CheckpointStore(Disk(10.0), generations=2)
        store.store(self.image(progress=100.0, size=1.0, seq=1))
        store.store(self.image(progress=200.0, size=1.0, seq=2))
        store.corrupt("j1", newest=1)
        image, discarded = store.fetch_verified("j1")
        assert image.cpu_progress == 100.0
        assert discarded == 1
        assert store.corrupt_discarded == 1
        # The corrupt generation's space was released.
        assert store.disk.used_mb == pytest.approx(1.0)

    def test_fetch_verified_exhausts_to_none(self):
        store = CheckpointStore(Disk(10.0), generations=2)
        store.store(self.image(progress=100.0, size=1.0, seq=1))
        store.store(self.image(progress=200.0, size=1.0, seq=2))
        poisoned = store.corrupt("j1", newest=2)
        assert poisoned == [("j1", 200.0), ("j1", 100.0)]
        image, discarded = store.fetch_verified("j1")
        assert image is None
        assert discarded == 2
        assert store.disk.used_mb == pytest.approx(0.0)

    def test_fetch_verified_clean_store_discards_nothing(self):
        store = self.make_store()
        stored = self.image()
        store.store(stored)
        image, discarded = store.fetch_verified("j1")
        assert image is stored
        assert discarded == 0

    def test_torn_write_keeps_previous_generation(self):
        from repro.remote_unix import CheckpointTornWrite

        store = self.make_store()
        store.store(self.image(progress=100.0, seq=1))
        store.arm_torn_writes(1)
        with pytest.raises(CheckpointTornWrite):
            store.store(self.image(progress=200.0, seq=2))
        assert store.torn_writes == 1
        assert store.fetch("j1").cpu_progress == 100.0
        # The torn image's transient allocation was released.
        assert store.disk.used_mb == pytest.approx(0.5)
        # The next write succeeds (the arm was consumed).
        store.store(self.image(progress=300.0, seq=3))
        assert store.fetch("j1").cpu_progress == 300.0

    def test_disarm_torn_writes(self):
        store = self.make_store()
        store.arm_torn_writes(5)
        store.disarm_torn_writes()
        store.store(self.image())
        assert store.torn_writes == 0


class TestShadow:
    def test_paper_costs(self):
        assert REMOTE_SYSCALL_CPU_S == pytest.approx(0.010)
        assert LOCAL_SYSCALL_CPU_S == pytest.approx(0.0005)
        assert breakeven_syscall_rate() == pytest.approx(100.0)

    def test_load_fraction(self):
        assert remote_syscall_load(10.0) == pytest.approx(0.1)
        assert remote_syscall_load(0.0) == 0.0

    def test_load_saturates_at_one(self):
        assert remote_syscall_load(1000.0) == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            remote_syscall_load(-1.0)

    def test_record_execution_charges_home_ledger(self):
        sim = Simulation()
        ledger = CpuLedger(sim, "home")
        shadow = ShadowProcess("j1", syscall_rate=5.0, home_ledger=ledger)
        charged = shadow.record_execution(0.0, 100.0)
        assert charged == pytest.approx(5.0)       # 5/s * 10 ms * 100 s
        assert ledger.totals[SYSCALL] == pytest.approx(5.0)
        assert shadow.remote_seconds == 100.0

    def test_retired_shadow_rejects_recording(self):
        sim = Simulation()
        shadow = ShadowProcess("j1", 1.0, CpuLedger(sim))
        shadow.retire()
        with pytest.raises(SimulationError):
            shadow.record_execution(0.0, 1.0)

    @given(rate=st.floats(0.0, 99.0), seconds=st.floats(0.0, 10000.0))
    @settings(max_examples=60, deadline=None)
    def test_support_proportional_to_execution(self, rate, seconds):
        sim = Simulation()
        shadow = ShadowProcess("j", rate, CpuLedger(sim))
        charged = shadow.record_execution(0.0, seconds)
        assert charged == pytest.approx(seconds * rate * 0.010)
