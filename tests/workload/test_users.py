"""Tests for Table 1 user profiles."""

import pytest

from repro.sim import DAY, HOUR, RandomStream, SimulationError
from repro.workload import TABLE_1, UserProfile, paper_profiles
from repro.sim.randomness import Constant, Exponential

HOMES = {user: f"ws-0{i + 1}" for i, (user, _j, _h) in enumerate(TABLE_1)}
HORIZON = 30 * DAY


def test_paper_profiles_match_table_counts():
    profiles = paper_profiles(HOMES, HORIZON)
    by_name = {p.name: p for p in profiles}
    assert by_name["A"].total_jobs == 690
    assert by_name["B"].total_jobs == 138
    assert by_name["E"].total_jobs == 11
    assert sum(p.total_jobs for p in profiles) == 918


def test_only_a_is_heavy():
    profiles = paper_profiles(HOMES, HORIZON)
    heavies = [p.name for p in profiles if p.heavy]
    assert heavies == ["A"]


def test_demand_means_match_table():
    profiles = paper_profiles(HOMES, HORIZON)
    for profile, (_user, _jobs, mean_hours) in zip(profiles, TABLE_1):
        assert profile.demand_dist.mean() == pytest.approx(
            mean_hours * HOUR, rel=1e-9
        )


def test_job_scale_shrinks_counts():
    profiles = paper_profiles(HOMES, HORIZON, job_scale=0.1)
    by_name = {p.name: p for p in profiles}
    assert by_name["A"].total_jobs == 69
    assert by_name["E"].total_jobs >= 1   # never scaled to zero


def test_homes_assigned():
    profiles = paper_profiles(HOMES, HORIZON)
    assert all(p.home == HOMES[p.name] for p in profiles)


def test_sampled_demands_have_low_median():
    # Fig. 2: mean ~5 h but median < 3 h for the pooled workload.
    profiles = paper_profiles(HOMES, HORIZON)
    stream = RandomStream(7, "demand-check")
    samples = []
    for profile in profiles:
        weight = profile.total_jobs
        samples.extend(
            profile.demand_dist.sample(stream) / HOUR
            for _ in range(weight)
        )
    samples.sort()
    median = samples[len(samples) // 2]
    mean = sum(samples) / len(samples)
    assert 4.0 < mean < 6.5
    assert median < 3.0


def test_light_user_without_interbatch_rejected():
    with pytest.raises(SimulationError):
        UserProfile("X", "ws-1", 10, Constant(HOUR))


def test_negative_total_jobs_rejected():
    with pytest.raises(SimulationError):
        UserProfile("X", "ws-1", -1, Constant(HOUR),
                    interbatch_dist=Exponential(100.0))
