"""Tests for cluster construction and trace export/replay."""

import pytest

from repro.core import CondorSystem, StationSpec
from repro.core.job import Job
from repro.machine import AlwaysActiveOwner, DiurnalOwner, NeverActiveOwner
from repro.sim import DAY, HOUR, RandomStream, Simulation, SimulationError
from repro.workload import (
    TraceReplayer,
    build_cluster_specs,
    default_user_homes,
    dump_trace,
    export_trace,
    load_trace,
    record_to_job,
    station_name,
)


class TestCluster:
    def test_paper_sized_cluster(self):
        specs = build_cluster_specs(RandomStream(1))
        assert len(specs) == 23
        assert specs[0].name == "ws-01"
        assert all(isinstance(s.owner_model, DiurnalOwner) for s in specs)

    def test_names_are_stable(self):
        assert station_name(0) == "ws-01"
        assert station_name(22) == "ws-23"

    def test_deterministic_given_seed(self):
        a = build_cluster_specs(RandomStream(9), count=5)
        b = build_cluster_specs(RandomStream(9), count=5)
        assert [s.owner_model.busyness for s in a] == \
            [s.owner_model.busyness for s in b]

    def test_prefix_stable_when_count_grows(self):
        small = build_cluster_specs(RandomStream(9), count=5)
        large = build_cluster_specs(RandomStream(9), count=10)
        assert [s.owner_model.busyness for s in small] == \
            [s.owner_model.busyness for s in large[:5]]

    def test_busyness_heterogeneous(self):
        specs = build_cluster_specs(RandomStream(2), count=23)
        values = {s.owner_model.busyness for s in specs}
        assert len(values) > 1

    def test_count_validated(self):
        with pytest.raises(SimulationError):
            build_cluster_specs(RandomStream(1), count=0)

    def test_default_homes(self):
        specs = build_cluster_specs(RandomStream(1), count=6)
        homes = default_user_homes(specs)
        assert homes == {"A": "ws-01", "B": "ws-02", "C": "ws-03",
                         "D": "ws-04", "E": "ws-05"}

    def test_homes_need_five_stations(self):
        specs = build_cluster_specs(RandomStream(1), count=3)
        with pytest.raises(SimulationError):
            default_user_homes(specs)


class TestTraces:
    def make_submitted_job(self, demand=HOUR, at=100.0):
        job = Job(user="A", home="ws-home", demand_seconds=demand,
                  syscall_rate=0.25)
        job.submitted_at = at
        return job

    def test_roundtrip_preserves_inputs(self):
        job = self.make_submitted_job()
        records = export_trace([job])
        clone = record_to_job(records[0])
        assert clone.user == job.user
        assert clone.demand_seconds == job.demand_seconds
        assert clone.syscall_rate == job.syscall_rate
        assert clone.image_mb() == pytest.approx(job.image_mb())

    def test_export_sorted_by_submit_time(self):
        late = self.make_submitted_job(at=500.0)
        early = self.make_submitted_job(at=10.0)
        records = export_trace([late, early])
        assert [r["submitted_at"] for r in records] == [10.0, 500.0]

    def test_unsubmitted_job_rejected(self):
        job = Job(user="A", home="ws", demand_seconds=HOUR)
        with pytest.raises(SimulationError):
            export_trace([job])

    def test_json_file_roundtrip(self, tmp_path):
        jobs = [self.make_submitted_job(at=float(t)) for t in (5, 50)]
        path = tmp_path / "trace.json"
        dump_trace(jobs, path)
        records = load_trace(path)
        assert len(records) == 2
        assert records[0]["submitted_at"] == 5.0

    def test_replayer_submits_at_recorded_times(self):
        jobs = [self.make_submitted_job(at=200.0),
                self.make_submitted_job(at=900.0)]
        records = export_trace(jobs)

        sim = Simulation()
        specs = [StationSpec("ws-home", owner_model=AlwaysActiveOwner()),
                 StationSpec("ws-h0", owner_model=NeverActiveOwner())]
        system = CondorSystem(sim, specs)
        replayer = TraceReplayer(sim, system, records)
        system.start()
        replayer.start()
        sim.run(until=DAY)
        assert len(replayer.jobs) == 2
        assert [j.submitted_at for j in replayer.jobs] == [200.0, 900.0]
        assert all(job.finished for job in replayer.jobs)

    def test_replay_reproduces_workload_for_ablations(self):
        # Same trace into two systems -> identical demand sequences.
        jobs = [self.make_submitted_job(at=float(i * 100 + 10),
                                        demand=HOUR * (1 + i))
                for i in range(3)]
        records = export_trace(jobs)
        demands = []
        for _ in range(2):
            sim = Simulation()
            specs = [StationSpec("ws-home",
                                 owner_model=AlwaysActiveOwner()),
                     StationSpec("ws-h0", owner_model=NeverActiveOwner())]
            system = CondorSystem(sim, specs)
            replayer = TraceReplayer(sim, system, records)
            system.start()
            replayer.start()
            sim.run(until=DAY)
            demands.append([j.demand_seconds for j in replayer.jobs])
        assert demands[0] == demands[1]
