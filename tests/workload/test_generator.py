"""Tests for the workload generator against a live small system."""

import pytest

from repro.core import CondorSystem, StationSpec
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import DAY, HOUR, RandomStream, Simulation
from repro.sim.randomness import Constant, Exponential, Uniform
from repro.workload import UserProfile, WorkloadGenerator


def build_small_system(sim, hosts=3):
    specs = [StationSpec("ws-home", owner_model=AlwaysActiveOwner())]
    specs += [StationSpec(f"ws-h{i}", owner_model=NeverActiveOwner())
              for i in range(hosts)]
    return CondorSystem(sim, specs)


def light_profile(total_jobs=10, demand=Constant(HOUR)):
    return UserProfile(
        "L", "ws-home", total_jobs, demand,
        batch_size_dist=Uniform(2, 4),
        interbatch_dist=Exponential(6 * HOUR),
    )


def heavy_profile(total_jobs=20, target=5):
    return UserProfile(
        "H", "ws-home", total_jobs, Constant(HOUR),
        batch_size_dist=Constant(5),
        standing_target=target,
    )


class TestLightUser:
    def test_submits_exactly_budget(self):
        sim = Simulation()
        system = build_small_system(sim)
        gen = WorkloadGenerator(sim, system, [light_profile(10)],
                                RandomStream(3), horizon=2 * DAY)
        system.start()
        gen.start()
        sim.run(until=2 * DAY)
        assert len(gen.submitted["L"]) == 10
        assert gen.remaining_budget(gen.profiles[0]) == 0

    def test_batches_are_bursty(self):
        sim = Simulation()
        system = build_small_system(sim)
        gen = WorkloadGenerator(sim, system, [light_profile(10)],
                                RandomStream(3), horizon=2 * DAY)
        system.start()
        gen.start()
        sim.run(until=2 * DAY)
        submit_times = sorted({j.submitted_at for j in gen.submitted["L"]})
        # 10 jobs in far fewer distinct submission instants than jobs.
        assert len(submit_times) <= 5

    def test_all_jobs_sorted_by_id(self):
        sim = Simulation()
        system = build_small_system(sim)
        gen = WorkloadGenerator(sim, system, [light_profile(8)],
                                RandomStream(3), horizon=DAY)
        system.start()
        gen.start()
        sim.run(until=DAY)
        ids = [job.id for job in gen.all_jobs()]
        assert ids == sorted(ids)


class TestHeavyUser:
    def test_maintains_standing_target(self):
        sim = Simulation()
        system = build_small_system(sim, hosts=2)
        gen = WorkloadGenerator(sim, system, [heavy_profile(50, target=5)],
                                RandomStream(4), horizon=10 * DAY)
        system.start()
        gen.start()
        sim.run(until=6 * HOUR)
        in_system = gen.in_system_count("H")
        assert in_system == 5      # topped up to the target

    def test_budget_is_exhausted_eventually(self):
        sim = Simulation()
        system = build_small_system(sim, hosts=3)
        gen = WorkloadGenerator(sim, system, [heavy_profile(12, target=4)],
                                RandomStream(4), horizon=30 * DAY)
        system.start()
        gen.start()
        sim.run(until=10 * DAY)
        assert len(gen.submitted["H"]) == 12
        assert all(job.finished for job in gen.submitted["H"])


class TestRefusals:
    def test_disk_refusals_counted_not_fatal(self):
        sim = Simulation()
        specs = [StationSpec("ws-home", owner_model=AlwaysActiveOwner(),
                             disk_mb=1.2),
                 StationSpec("ws-h0", owner_model=NeverActiveOwner())]
        system = CondorSystem(sim, specs)
        profile = UserProfile(
            "L", "ws-home", 6, Constant(10 * HOUR),
            batch_size_dist=Constant(6),
            interbatch_dist=Exponential(HOUR),
        )
        gen = WorkloadGenerator(sim, system, [profile], RandomStream(5),
                                horizon=DAY)
        system.start()
        gen.start()
        sim.run(until=DAY)
        # ~0.5 MB images on a 1.2 MB disk: only 2 fit at submit time.
        assert gen.refused["L"] > 0
        assert len(gen.submitted["L"]) + gen.refused["L"] == 6


def test_light_user_names():
    sim = Simulation()
    system = build_small_system(sim)
    gen = WorkloadGenerator(
        sim, system, [heavy_profile(), light_profile()], RandomStream(1),
        horizon=DAY,
    )
    assert gen.light_user_names() == frozenset({"L"})


class TestHeavyQuota:
    def test_daily_quota_paces_submissions(self):
        sim = Simulation()
        system = build_small_system(sim, hosts=3)
        profile = UserProfile(
            "H", "ws-home", 30, Constant(10 * 60.0),
            batch_size_dist=Constant(10),
            standing_target=30, daily_quota=5,
        )
        gen = WorkloadGenerator(sim, system, [profile], RandomStream(8),
                                horizon=10 * DAY)
        system.start()
        gen.start()
        sim.run(until=DAY - 1.0)
        day1 = len(gen.submitted["H"])
        sim.run(until=2 * DAY - 1.0)
        day2 = len(gen.submitted["H"])
        assert day1 == 5               # capped by the quota
        assert day2 == 10
        sim.run(until=10 * DAY)
        assert len(gen.submitted["H"]) == 30   # budget still exhausted

    def test_no_quota_floods_to_standing_target(self):
        sim = Simulation()
        system = build_small_system(sim, hosts=1)
        profile = UserProfile(
            "H", "ws-home", 40, Constant(10 * HOUR),
            batch_size_dist=Constant(50),
            standing_target=25,
        )
        gen = WorkloadGenerator(sim, system, [profile], RandomStream(8),
                                horizon=10 * DAY)
        system.start()
        gen.start()
        sim.run(until=HOUR)
        assert len(gen.submitted["H"]) == 25   # straight to the target
