"""Smoke tests: every example script runs to completion.

The month example is exercised at reduced scale via its CLI flags; the
live-cluster example runs real threads and finishes in about a second.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "completed: 6/6 jobs" in out
    assert "leverage" in out


def test_fairness_heavy_vs_light(capsys):
    run_example("fairness_heavy_vs_light.py")
    out = capsys.readouterr().out
    assert "Up-Down (the paper's algorithm)" in out
    assert "First-come-first-served baseline" in out
    assert "3/3 done" in out


def test_checkpoint_migration(capsys):
    run_example("checkpoint_migration.py")
    out = capsys.readouterr().out
    assert "desk -> spare" in out
    assert "leverage" in out


def test_parameter_sweep(capsys):
    run_example("parameter_sweep.py")
    out = capsys.readouterr().out
    assert "DAG finished" in out
    assert "reserved capacity" in out


def test_simulated_month_scaled(capsys):
    run_example("simulated_month.py",
                ["--days", "2", "--scale", "0.03",
                 "--exhibit", "headline_scalars"])
    out = capsys.readouterr().out
    assert "Headline scalars" in out


def test_live_cluster(capsys):
    run_example("live_cluster.py")
    out = capsys.readouterr().out
    assert "pi-series finished" in out
    assert "->" in out   # migrated between workers


def test_mixed_pool_parallel(capsys):
    run_example("mixed_pool_parallel.py")
    out = capsys.readouterr().out
    assert "gang finished: True" in out
    assert "sun-desk -> sun-spare" in out
