"""Network failure-model tests: crashes, partitions, loss, NIC release.

The net layer's contract under faults — transfers *fail with a signal*
instead of silently completing, NIC reservations never outlive a dead
transfer, counters never move for traffic that could not exist, and
deadline-less RPCs stay observable — is what the recovery machinery in
the schedulers is built on.
"""

import pytest

from repro.net import Network, Node, RpcTicket
from repro.sim import RandomStream, Simulation, SimulationError


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def net(sim):
    return Network(sim, latency=0.01, bandwidth_mb_s=1.0)


def attach(net, *names):
    nodes = {}
    for name in names:
        node = Node(name)
        node.register_handler("echo", lambda payload: ("echoed", payload))
        net.attach(node)
        nodes[name] = node
    return nodes


class TestTransferEndpointCrash:
    def test_fails_fast_when_dst_crashed_at_start(self, sim, net):
        nodes = attach(net, "a", "b")
        nodes["b"].crashed = True
        outcomes = []
        net.transfer("a", "b", 5.0).add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("failed", "endpoint_crashed")]
        assert net.transfers_failed == 1
        # The connect attempt errors after one latency; no NIC was held.
        assert net.nic_busy_until("a") == sim.now
        assert net.nic_busy_until("b") == sim.now

    def test_fails_fast_when_src_crashed_at_start(self, sim, net):
        nodes = attach(net, "a", "b")
        nodes["a"].crashed = True
        outcomes = []
        net.transfer("a", "b", 5.0).add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("failed", "endpoint_crashed")]

    def test_aborts_when_endpoint_crashes_mid_transfer(self, sim, net):
        nodes = attach(net, "a", "b")
        outcomes = []
        net.transfer("a", "b", 10.0).add_waiter(
            lambda outcome: outcomes.append((sim.now, outcome)))

        def crash_b():
            nodes["b"].crashed = True
            net.endpoint_crashed("b")

        sim.schedule(3.0, crash_b)
        sim.run()
        assert outcomes == [(3.0, ("failed", "endpoint_crashed"))]
        assert net.transfers_failed == 1

    def test_abort_releases_both_nic_reservations(self, sim, net):
        nodes = attach(net, "a", "b")
        net.transfer("a", "b", 100.0)     # would hold NICs ~100 s

        def crash_and_check():
            nodes["b"].crashed = True
            net.endpoint_crashed("b")
            assert net.nic_busy_until("a") == sim.now
            assert net.nic_busy_until("b") == sim.now

        sim.schedule(5.0, crash_and_check)
        outcomes = []

        def follow_up():
            # A new transfer from the surviving endpoint starts at once
            # instead of queueing behind the dead copy.
            net.transfer("a", "c", 1.0).add_waiter(outcomes.append)

        sim.schedule(6.0, follow_up)
        sim.run()
        status, finish = outcomes[0]
        assert status == "ok"
        assert finish == pytest.approx(6.0 + 0.01 + 1.0)

    def test_abort_keeps_reservation_for_surviving_transfer(self, sim, net):
        nodes = attach(net, "a", "b")
        net.transfer("a", "b", 10.0)      # dies at t=2
        ok = []
        net.transfer("a", "c", 10.0).add_waiter(ok.append)   # queued after

        def crash_b():
            nodes["b"].crashed = True
            net.endpoint_crashed("b")
            # a's NIC is still reserved by the queued a->c copy.
            assert net.nic_busy_until("a") > sim.now

        sim.schedule(2.0, crash_b)
        sim.run()
        assert ok and ok[0][0] == "ok"


class TestTransferPartitionAndLoss:
    def test_fails_fast_across_partition(self, sim, net):
        attach(net, "a", "b")
        net.partition(["b"])
        outcomes = []
        net.transfer("a", "b", 5.0).add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("failed", "partitioned")]

    def test_aborts_crossing_transfer_when_partition_lands(self, sim, net):
        attach(net, "a", "b")
        outcomes = []
        net.transfer("a", "b", 10.0).add_waiter(
            lambda outcome: outcomes.append((sim.now, outcome)))
        sim.schedule(4.0, net.partition, ["b"])
        sim.run()
        assert outcomes == [(4.0, ("failed", "partitioned"))]

    def test_transfer_within_island_unaffected(self, sim, net):
        attach(net, "a", "b")
        net.partition(["a", "b"])
        outcomes = []
        net.transfer("a", "b", 2.0).add_waiter(outcomes.append)
        sim.run()
        assert outcomes[0][0] == "ok"

    def test_lost_transfer_discovered_at_finish_time(self, sim):
        net = Network(sim, latency=0.01, bandwidth_mb_s=1.0,
                      loss_probability=1.0,
                      loss_stream=RandomStream(5, "loss"))
        outcomes = []
        net.transfer("a", "b", 2.0).add_waiter(
            lambda outcome: outcomes.append((sim.now, outcome)))
        sim.run()
        # The sender discovers the corruption when the copy should have
        # completed, not instantly.
        assert outcomes == [(pytest.approx(0.01 + 2.0), ("failed", "lost"))]
        assert net.transfers_failed == 1


class TestPartitionControlTraffic:
    def test_message_across_cut_dropped_and_counted(self, sim, net):
        nodes = attach(net, "a", "b")
        seen = []
        nodes["b"].register_handler("ping", seen.append)
        net.partition(["b"])
        net.message("b", "ping", 1, src="a")
        sim.run()
        assert seen == []
        assert net.messages_sent == 1
        assert net.messages_dropped == 1

    def test_rpc_across_cut_times_out(self, sim, net):
        attach(net, "a", "b")
        net.partition(["b"])
        outcomes = []
        net.rpc("b", "echo", None, timeout=0.5,
                src="a").add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("timeout", None)]

    def test_heal_restores_traffic(self, sim, net):
        attach(net, "a", "b")
        net.partition(["b"])
        net.heal()
        outcomes = []
        net.rpc("b", "echo", "x", src="a").add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("ok", ("echoed", "x"))]

    def test_unnamed_sender_always_reaches(self, sim, net):
        # src=None (direct test calls, the simulation harness) is exempt.
        attach(net, "b")
        net.partition(["b"])
        outcomes = []
        net.rpc("b", "echo", "x").add_waiter(outcomes.append)
        sim.run()
        assert outcomes == [("ok", ("echoed", "x"))]


class TestCounterDiscipline:
    def test_unknown_message_destination_raises_before_counting(self, net):
        with pytest.raises(SimulationError):
            net.message("ghost", "ping", 1)
        assert net.messages_sent == 0
        assert net.messages_dropped == 0

    def test_unknown_rpc_destination_raises_before_counting(self, net):
        with pytest.raises(SimulationError):
            net.rpc("ghost", "echo", None)
        assert net.messages_sent == 0
        assert net.messages_dropped == 0

    def test_unknown_destination_draws_no_loss_randomness(self, sim):
        stream = RandomStream(9, "loss")
        net = Network(sim, loss_probability=0.5, loss_stream=stream)
        before = stream.random()
        probe = RandomStream(9, "loss")
        probe.random()
        with pytest.raises(SimulationError):
            net.message("ghost", "ping", 1)
        # The stream advanced by exactly our own probe draw, nothing more.
        assert stream.random() == probe.random()
        assert isinstance(before, float)

    def test_set_loss_validation(self, sim, net):
        with pytest.raises(SimulationError):
            net.set_loss(1.5)
        with pytest.raises(SimulationError):
            net.set_loss(-0.1)
        with pytest.raises(SimulationError):
            net.set_loss(0.5)        # no loss_stream on this network
        net.set_loss(0.0)            # zero is always fine

    def test_set_loss_burst_applies_and_restores(self, sim):
        net = Network(sim, loss_stream=RandomStream(3, "loss"))
        attach(net, "b")
        net.set_loss(1.0)
        net.message("b", "ping")
        net.set_loss(0.0)
        net.message("b", "ping2")
        assert net.messages_dropped == 1


class TestRpcTickets:
    def test_deadline_less_callback_rpc_returns_ticket(self, sim, net):
        attach(net, "b")
        outcomes = []
        ticket = net.rpc("b", "echo", 7, timeout=None,
                         callback=outcomes.append)
        assert isinstance(ticket, RpcTicket)
        assert net.outstanding_rpcs() == [ticket]
        sim.run()
        assert outcomes == [("ok", ("echoed", 7))]
        assert ticket.settled
        assert net.outstanding_rpcs() == []

    def test_lost_reply_leaves_ticket_outstanding(self, sim):
        net = Network(sim, loss_probability=1.0,
                      loss_stream=RandomStream(3, "loss"))
        attach(net, "b")
        outcomes = []
        ticket = net.rpc("b", "echo", 7, timeout=None,
                         callback=outcomes.append)
        sim.run()
        # The callback never fired and nothing else says so — except
        # the ticket, still outstanding for the caller's own deadline.
        assert outcomes == []
        assert not ticket.settled
        assert net.outstanding_rpcs() == [ticket]
        ticket.abandon()
        assert net.outstanding_rpcs() == []
        assert net.rpcs_abandoned == 1
        ticket.abandon()                  # idempotent
        assert net.rpcs_abandoned == 1

    def test_signal_and_timeout_rpcs_get_no_ticket(self, sim, net):
        attach(net, "b")
        assert net.rpc("b", "echo", 1) is not None            # Signal
        assert net.rpc("b", "echo", 1, timeout=5.0,
                       callback=lambda outcome: None) is None
        assert net.outstanding_rpcs() == []
        sim.run()
