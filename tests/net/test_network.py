"""Tests for the LAN model: messages, RPCs, transfers, failures."""

import pytest

from repro.net import Network, Node
from repro.sim import RandomStream, Simulation, SimulationError


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def net(sim):
    return Network(sim, latency=0.01, bandwidth_mb_s=1.0)


def make_echo_node(name):
    node = Node(name)
    node.register_handler("echo", lambda payload: ("echoed", payload))
    return node


def test_attach_and_lookup(net):
    node = Node("a")
    net.attach(node)
    assert net.node("a") is node


def test_duplicate_name_rejected(net):
    net.attach(Node("a"))
    with pytest.raises(SimulationError):
        net.attach(Node("a"))


def test_unknown_node_rejected(net):
    with pytest.raises(SimulationError):
        net.node("ghost")


def test_duplicate_handler_rejected():
    node = Node("a")
    node.register_handler("op", lambda p: None)
    with pytest.raises(SimulationError):
        node.register_handler("op", lambda p: None)


def test_missing_handler_rejected():
    node = Node("a")
    with pytest.raises(SimulationError):
        node.handle("nope", None)


def test_message_delivered_after_latency(sim, net):
    seen = []
    node = Node("b")
    node.register_handler("ping", lambda payload: seen.append((sim.now, payload)))
    net.attach(node)
    net.message("b", "ping", 42)
    sim.run()
    assert seen == [(0.01, 42)]


def test_message_to_crashed_node_dropped(sim, net):
    seen = []
    node = Node("b")
    node.register_handler("ping", lambda payload: seen.append(payload))
    net.attach(node)
    node.crashed = True
    net.message("b", "ping", 1)
    sim.run()
    assert seen == []


def test_rpc_roundtrip(sim, net):
    net.attach(make_echo_node("server"))
    outcomes = []
    result = net.rpc("server", "echo", "hello")
    result.add_waiter(lambda outcome: outcomes.append((sim.now, outcome)))
    sim.run()
    assert outcomes == [(0.02, ("ok", ("echoed", "hello")))]


def test_rpc_to_crashed_node_times_out(sim, net):
    node = make_echo_node("server")
    net.attach(node)
    node.crashed = True
    outcomes = []
    net.rpc("server", "echo", None, timeout=0.5).add_waiter(outcomes.append)
    sim.run()
    assert outcomes == [("timeout", None)]


def test_rpc_timeout_does_not_double_fire(sim, net):
    net.attach(make_echo_node("server"))
    outcomes = []
    net.rpc("server", "echo", "x", timeout=10.0).add_waiter(outcomes.append)
    sim.run()
    assert len(outcomes) == 1
    assert outcomes[0][0] == "ok"


def test_lossy_network_drops_messages(sim):
    stream = RandomStream(3, "loss")
    net = Network(sim, loss_probability=1.0, loss_stream=stream)
    node = Node("b")
    seen = []
    node.register_handler("ping", lambda payload: seen.append(payload))
    net.attach(node)
    net.message("b", "ping", 1)
    sim.run()
    assert seen == []
    assert net.messages_dropped == 1


def test_lossy_rpc_times_out(sim):
    stream = RandomStream(3, "loss")
    net = Network(sim, loss_probability=1.0, loss_stream=stream)
    net.attach(make_echo_node("server"))
    outcomes = []
    net.rpc("server", "echo", None, timeout=0.2).add_waiter(outcomes.append)
    sim.run()
    assert outcomes == [("timeout", None)]


def test_loss_needs_stream(sim):
    with pytest.raises(SimulationError):
        Network(sim, loss_probability=0.5)


def test_transfer_duration_matches_bandwidth(sim, net):
    outcomes = []
    net.transfer("a", "b", 2.0).add_waiter(outcomes.append)
    sim.run()
    assert len(outcomes) == 1
    status, finish = outcomes[0]
    assert status == "ok"
    assert finish == pytest.approx(0.01 + 2.0)


def test_transfers_serialize_per_endpoint(sim, net):
    outcomes = []
    net.transfer("a", "b", 1.0).add_waiter(outcomes.append)
    net.transfer("a", "c", 1.0).add_waiter(outcomes.append)
    sim.run()
    first = 0.01 + 1.0
    second = first + 0.01 + 1.0
    assert [status for status, _ in outcomes] == ["ok", "ok"]
    assert outcomes[0][1] == pytest.approx(first)
    assert outcomes[1][1] == pytest.approx(second)


def test_transfers_on_disjoint_endpoints_overlap(sim, net):
    outcomes = []
    net.transfer("a", "b", 1.0).add_waiter(outcomes.append)
    net.transfer("c", "d", 1.0).add_waiter(outcomes.append)
    sim.run()
    assert outcomes[0][1] == pytest.approx(outcomes[1][1])


def test_negative_transfer_rejected(net):
    with pytest.raises(SimulationError):
        net.transfer("a", "b", -1.0)


def test_traffic_counters(sim, net):
    net.attach(make_echo_node("server"))
    net.rpc("server", "echo", None)
    net.transfer("a", "b", 3.0)
    sim.run()
    assert net.messages_sent == 2      # request + reply
    assert net.bytes_transferred_mb == 3.0


class TestJitter:
    def test_jitter_requires_stream(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, latency_jitter=0.1)

    def test_negative_jitter_rejected(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, latency_jitter=-0.1,
                    jitter_stream=RandomStream(1))

    def test_jitter_spreads_delivery_times(self, sim):
        net = Network(sim, latency=0.01, latency_jitter=0.5,
                      jitter_stream=RandomStream(8, "jitter"))
        node = Node("b")
        seen = []
        node.register_handler("ping", lambda payload: seen.append(sim.now))
        net.attach(node)
        for _ in range(50):
            net.message("b", "ping")
        sim.run()
        assert min(seen) >= 0.01
        assert max(seen) - min(seen) > 0.1   # genuinely spread out

    def test_jitter_can_reorder_messages(self, sim):
        net = Network(sim, latency=0.01, latency_jitter=1.0,
                      jitter_stream=RandomStream(9, "jitter"))
        node = Node("b")
        order = []
        node.register_handler("tag", order.append)
        net.attach(node)
        for i in range(30):
            net.message("b", "tag", i)
        sim.run()
        assert sorted(order) == list(range(30))
        assert order != list(range(30))      # arrival order differs
