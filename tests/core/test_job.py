"""Tests for the Job state machine and per-job metrics."""

import pytest

from repro.core import job as jobstate
from repro.core.job import Job
from repro.remote_unix import SegmentLayout
from repro.sim import HOUR, SimulationError


def make_job(demand=HOUR, **kwargs):
    return Job(user="A", home="ws-1", demand_seconds=demand, **kwargs)


class TestConstruction:
    def test_defaults(self):
        job = make_job()
        assert job.state == jobstate.PENDING
        assert job.remaining_seconds == HOUR
        assert job.image_mb() == pytest.approx(0.5)

    def test_demand_must_be_positive(self):
        with pytest.raises(SimulationError):
            make_job(demand=0)

    def test_negative_syscall_rate_rejected(self):
        with pytest.raises(SimulationError):
            make_job(syscall_rate=-1.0)

    def test_layout_type_checked(self):
        with pytest.raises(SimulationError):
            make_job(layout="big")

    def test_ids_are_unique_and_increasing(self):
        a, b = make_job(), make_job()
        assert b.id > a.id


class TestStateMachine:
    def test_legal_path_to_completion(self):
        job = make_job()
        for state in (jobstate.PLACING, jobstate.RUNNING,
                      jobstate.COMPLETED):
            job.transition(state)
        assert job.finished

    def test_suspend_resume_cycle(self):
        job = make_job()
        job.transition(jobstate.PLACING)
        job.transition(jobstate.RUNNING)
        job.transition(jobstate.SUSPENDED)
        job.transition(jobstate.RUNNING)
        job.transition(jobstate.SUSPENDED)
        job.transition(jobstate.VACATING)
        job.transition(jobstate.PENDING)
        assert job.state == jobstate.PENDING

    def test_illegal_transition_raises(self):
        job = make_job()
        with pytest.raises(SimulationError):
            job.transition(jobstate.RUNNING)   # must go through PLACING

    def test_completed_is_terminal(self):
        job = make_job()
        job.transition(jobstate.PLACING)
        job.transition(jobstate.RUNNING)
        job.transition(jobstate.COMPLETED)
        with pytest.raises(SimulationError):
            job.transition(jobstate.PENDING)

    def test_in_system_covers_queued_states(self):
        job = make_job()
        assert job.in_system
        job.transition(jobstate.REMOVED)
        assert not job.in_system


class TestProgressAndRollback:
    def test_remaining_tracks_progress(self):
        job = make_job(demand=100.0)
        job.progress = 30.0
        assert job.remaining_seconds == 70.0

    def test_remaining_never_negative(self):
        job = make_job(demand=100.0)
        job.progress = 150.0
        assert job.remaining_seconds == 0.0

    def test_rollback_returns_lost_work(self):
        job = make_job(demand=100.0)
        job.progress = 60.0
        job.checkpointed_progress = 40.0
        lost = job.roll_back_to_checkpoint()
        assert lost == 20.0
        assert job.progress == 40.0
        assert job.wasted_cpu_seconds == 20.0

    def test_rollback_with_checkpoint_ahead_recovers_work(self):
        # A durable periodic checkpoint cut mid-slice on a crashed host
        # can lead the settled progress: resetting *recovers* work and
        # refunds the waste the crash accounting booked.
        job = make_job(demand=100.0)
        job.progress = 20.0
        job.wasted_cpu_seconds = 30.0      # booked at the host crash
        job.checkpointed_progress = 40.0   # durable image from mid-slice
        delta = job.roll_back_to_checkpoint()
        assert delta == -20.0
        assert job.progress == 40.0
        assert job.wasted_cpu_seconds == 10.0

    def test_rollback_waste_refund_never_goes_negative(self):
        job = make_job(demand=100.0)
        job.progress = 0.0
        job.checkpointed_progress = 50.0
        job.roll_back_to_checkpoint()
        assert job.wasted_cpu_seconds == 0.0
        assert job.progress == 50.0

    def test_image_grows_with_progress(self):
        layout = SegmentLayout(100, 200, 100, 50,
                               data_growth_kb_per_cpu_hour=100)
        job = make_job(demand=10 * HOUR, layout=layout)
        small = job.image_mb()
        job.progress = 5 * HOUR
        assert job.image_mb() > small


class TestSupportAccounting:
    def test_support_kinds(self):
        job = make_job()
        job.add_support("placement", 2.5)
        job.add_support("checkpoint", 2.5)
        job.add_support("syscall", 1.0)
        assert job.total_support_seconds == 6.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            make_job().add_support("magic", 1.0)

    def test_negative_support_rejected(self):
        with pytest.raises(SimulationError):
            make_job().add_support("syscall", -1.0)


class TestDerivedMetrics:
    def test_leverage(self):
        job = make_job(demand=HOUR)
        job.remote_cpu_seconds = 3600.0
        job.add_support("placement", 2.5)
        job.add_support("checkpoint", 2.5)
        job.add_support("syscall", 1.0)
        assert job.leverage() == pytest.approx(600.0)

    def test_leverage_none_without_support(self):
        assert make_job().leverage() is None

    def test_wait_ratio(self):
        job = make_job(demand=HOUR)
        job.submitted_at = 0.0
        job.completed_at = 3.0 * HOUR
        assert job.wait_ratio() == pytest.approx(2.0)

    def test_wait_ratio_zero_when_served_instantly(self):
        job = make_job(demand=HOUR)
        job.submitted_at = 0.0
        job.completed_at = HOUR
        assert job.wait_ratio() == 0.0

    def test_wait_ratio_none_until_completion(self):
        assert make_job().wait_ratio() is None

    def test_checkpoint_rate(self):
        job = make_job(demand=2 * HOUR)
        job.checkpoint_count = 3
        assert job.checkpoint_rate_per_hour() == pytest.approx(1.5)
