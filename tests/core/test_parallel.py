"""Tests for gang-launched parallel jobs (future work §5(2))."""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    GangJob,
    Job,
    StationSpec,
    SubmissionRefused,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.sim import DAY, HOUR, Simulation, SimulationError

FOREVER = 10_000_000.0


def build(pool=4, config=None, home_disk=None):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=home_disk)]
    specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
              for i in range(pool)]
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    system.start()
    return sim, system


def test_width_validated():
    with pytest.raises(SimulationError):
        GangJob(user="u", home="home", demand_seconds=HOUR, width=1)


def test_gang_launches_together_and_completes():
    sim, system = build(pool=4)
    gang = GangJob(user="u", home="home", demand_seconds=2 * HOUR,
                   width=3, name="pvm")
    system.submit_gang(gang)
    sim.run(until=DAY)
    assert gang.finished
    # Coordinated launch: members start within seconds of each other
    # (image transfers serialize briefly on the home NIC).
    starts = [m.first_placed_at for m in gang.members]
    assert max(starts) - min(starts) < 5.0
    hosts = {m.placements[0] for m in gang.members}
    assert len(hosts) == 3   # three distinct machines


def test_gang_waits_for_full_width():
    # Only 2 idle machines but width 3: the gang must wait until a third
    # frees up (here: never within the horizon).
    sim, system = build(pool=2)
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=3)
    system.submit_gang(gang)
    sim.run(until=12 * HOUR)
    assert not gang.launched
    assert all(m.state == "pending" for m in gang.members)


def test_gang_bypasses_placement_throttle():
    # Default throttle is one placement per 2-minute cycle; a width-4
    # gang still launches all members in one cycle.
    sim, system = build(pool=4)
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=4)
    system.submit_gang(gang)
    sim.run(until=10 * 60.0)
    assert gang.launched
    assert gang.launch_delay() < 3 * 60.0
    assert sum(1 for m in gang.members if m.state == "running") == 4


def test_single_jobs_slip_past_waiting_gang():
    # The §5(2) "scheduling problem": a wide gang starves while single
    # jobs keep taking the one machine that is free.
    sim, system = build(pool=2)
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=3)
    system.submit_gang(gang)
    single = Job(user="u", home="home", demand_seconds=HOUR)
    system.submit(single)
    sim.run(until=8 * HOUR)
    assert single.finished
    assert not gang.launched


def test_evicted_member_resumes_individually():
    sim = Simulation()
    specs = [
        StationSpec("home", owner_model=AlwaysActiveOwner()),
        StationSpec("h0", owner_model=NeverActiveOwner()),
        # h1's owner comes back for good one hour in.
        StationSpec("h1", owner_model=TraceOwner([(HOUR, FOREVER)])),
        StationSpec("h2", owner_model=NeverActiveOwner()),
    ]
    system = CondorSystem(sim, specs, coordinator_host="home")
    system.start()
    gang = GangJob(user="u", home="home", demand_seconds=3 * HOUR, width=2)
    system.submit_gang(gang)
    sim.run(until=DAY)
    assert gang.finished
    evicted = [m for m in gang.members if m.checkpoint_count > 0]
    assert len(evicted) == 1
    assert evicted[0].wasted_cpu_seconds == 0.0   # resumed from checkpoint


def test_gang_refused_when_disk_cannot_hold_all_members():
    sim, system = build(pool=4, home_disk=1.2)   # fits 2 half-MB images
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=3)
    with pytest.raises(SubmissionRefused):
        system.submit_gang(gang)
    assert system.gangs == []


def test_gang_members_tracked_in_system_jobs():
    sim, system = build(pool=4)
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=2)
    system.submit_gang(gang)
    assert len(system.jobs) == 2
    assert system.queue_length() == 2


def test_two_gangs_launch_in_priority_order():
    config = CondorConfig()
    sim, system = build(pool=3, config=config)
    first = GangJob(user="u", home="home", demand_seconds=HOUR, width=2)
    second = GangJob(user="u", home="home", demand_seconds=HOUR, width=2)
    system.submit_gang(first)
    system.submit_gang(second)
    sim.run(until=DAY)
    assert first.finished and second.finished
    assert first.launched_at < second.launched_at


def test_completed_at_is_last_member():
    sim, system = build(pool=3)
    gang = GangJob(user="u", home="home", demand_seconds=HOUR, width=2)
    system.submit_gang(gang)
    sim.run(until=DAY)
    assert gang.completed_at == max(m.completed_at for m in gang.members)
    assert gang.total_remote_cpu() == pytest.approx(2 * HOUR, abs=2.0)
