"""Focused unit tests of the local scheduler's less-travelled paths."""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    SchedulingError,
    StationSpec,
    events,
)
from repro.core import job as jobstate
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import DAY, HOUR, Simulation
from repro.telemetry import kinds as tk


def build(hosts=1, config=None, home_disk=None):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=home_disk)]
    specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
              for i in range(hosts)]
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    system.start()
    return sim, system


class TestSubmission:
    def test_wrong_home_rejected(self):
        sim, system = build()
        job = Job(user="u", home="elsewhere", demand_seconds=HOUR)
        with pytest.raises(SchedulingError):
            system.scheduler("home").submit(job)

    def test_submit_stores_initial_image(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        store = system.scheduler("home").store
        image = store.fetch(job.id)
        assert image is not None
        assert image.cpu_progress == 0.0

    def test_completed_job_image_discarded(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        sim.run(until=DAY)
        assert job.finished
        assert system.scheduler("home").store.fetch(job.id) is None


class TestRemoval:
    def test_remove_pending_job(self):
        sim, system = build(hosts=0)
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        system.scheduler("home").remove(job)
        assert job.state == jobstate.REMOVED
        assert system.queue_length() == 0
        assert system.bus.counts[events.JOB_REMOVED] == 1

    def test_remove_running_job_rejected(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=10 * HOUR)
        system.submit(job)
        sim.run(until=HOUR)
        assert job.state == jobstate.RUNNING
        with pytest.raises(SchedulingError):
            system.scheduler("home").remove(job)

    def test_removed_job_frees_disk(self):
        sim, system = build(hosts=0, home_disk=1.0)
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        used_before = system.station("home").disk.used_mb
        scheduler.remove(job)
        assert system.station("home").disk.used_mb < used_before


class TestShadows:
    def test_shadow_created_on_placement_and_retired_on_completion(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  syscall_rate=1.0)
        system.submit(job)
        sim.run(until=10 * 60.0)
        assert job.id in scheduler.shadows
        sim.run(until=DAY)
        assert job.finished
        assert job.id not in scheduler.shadows

    def test_shadow_support_matches_job_accounting(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  syscall_rate=2.0)
        system.submit(job)
        sim.run(until=DAY)
        # 2 calls/s * 10 ms * 3600 s = 72 s of shadow support.
        assert job.support_seconds["syscall"] == pytest.approx(72.0,
                                                               rel=0.01)


class TestGrantCornerCases:
    def test_grant_with_empty_queue_is_ignored(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        # Inject a spurious grant directly.
        scheduler._handle_grant({"host": "h0", "free_mb": 100.0,
                                 "arch": "vax"})
        sim.run(until=300.0)
        assert system.station("h0").running_job is None

    def test_daemon_overhead_accrues_hourly(self):
        sim, system = build(hosts=0)
        sim.run(until=10 * HOUR)
        ledger = system.station("home").ledger
        expected = 10 * HOUR * 0.0025
        assert ledger.totals["scheduler"] == pytest.approx(expected,
                                                           rel=0.01)

    def test_zero_daemon_load_config(self):
        sim, system = build(hosts=0,
                            config=CondorConfig(scheduler_daemon_load=0.0))
        sim.run(until=10 * HOUR)
        assert system.station("home").ledger.totals["scheduler"] == 0.0


class TestStorageDurability:
    """The loud-loss paths: full disks, torn writes, corrupt restores."""

    def _vacate_payload(self, job, host="h0"):
        return {"job": job, "host": host, "image_mb": job.image_mb(),
                "slices": [], "reason": "owner_returned",
                "incarnation": job.incarnation}

    def _running_job(self, system, sim):
        job = Job(user="u", home="home", demand_seconds=10 * HOUR)
        system.submit(job)
        sim.run(until=HOUR)
        assert job.state == jobstate.RUNNING
        return job

    def test_vacate_checkpoint_stored_counts_image(self):
        sim, system = build()
        job = self._running_job(system, sim)
        job.progress = 1800.0      # the host's bookkeeping at vacate time
        job.transition(jobstate.VACATING)
        system.scheduler("home")._handle_job_vacated(
            self._vacate_payload(job))
        assert job.checkpoint_count == 1
        assert job.checkpoint_lost_count == 0
        assert job.checkpointed_progress == 1800.0

    def test_vacate_disk_full_is_loud_not_silent(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        job = self._running_job(system, sim)
        job.progress = 1800.0
        job.transition(jobstate.VACATING)
        disk = system.station("home").disk
        disk.allocate(disk.free_mb, purpose="filler")
        seen = []
        system.bus.subscribe_event(tk.CHECKPOINT_IMAGE_LOST, seen.append)
        scheduler._handle_job_vacated(self._vacate_payload(job))
        # The image was lost, telemetered, and not counted as stored.
        assert [e.payload["purpose"] for e in seen] == ["vacate"]
        assert seen[0].payload["reason"] == "disk_full"
        assert job.checkpoint_count == 0
        assert job.checkpoint_lost_count == 1
        counter = system.bus.metrics.counter("checkpoint.dropped_disk_full")
        assert counter.value == 1
        # The job rolled back to its last stored image and is queued.
        assert job.progress == job.checkpointed_progress == 0.0
        assert job.state == jobstate.PENDING

    def test_vacate_torn_write_keeps_previous_image(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        job = self._running_job(system, sim)
        job.progress = 1800.0
        job.transition(jobstate.VACATING)
        scheduler.store.arm_torn_writes(1)
        seen = []
        system.bus.subscribe_event(tk.CHECKPOINT_WRITE_TORN, seen.append)
        scheduler._handle_job_vacated(self._vacate_payload(job))
        assert [e.payload["purpose"] for e in seen] == ["vacate"]
        assert job.checkpoint_count == 0
        assert job.checkpoint_lost_count == 1
        counter = system.bus.metrics.counter("checkpoint.dropped_torn_write")
        assert counter.value == 1
        # The initial (submit-time) image survived the torn write.
        image = scheduler.store.fetch(job.id)
        assert image is not None and image.cpu_progress == 0.0

    def test_periodic_checkpoint_disk_full_is_loud(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        job = self._running_job(system, sim)
        disk = system.station("home").disk
        disk.allocate(disk.free_mb, purpose="filler")
        seen = []
        system.bus.subscribe_event(tk.CHECKPOINT_IMAGE_LOST, seen.append)
        scheduler._handle_periodic_checkpoint({
            "job": job, "image_mb": job.image_mb(), "progress": 600.0,
            "incarnation": job.incarnation,
        })
        assert [e.payload["purpose"] for e in seen] == ["periodic"]
        assert job.periodic_checkpoint_count == 0
        assert job.checkpoint_lost_count == 1
        assert job.checkpointed_progress == 0.0
        counter = system.bus.metrics.counter("checkpoint.dropped_disk_full")
        assert counter.value == 1

    def test_restore_fallback_on_corrupt_image(self):
        sim, system = build(hosts=0)
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        scheduler.store.corrupt(job.id)
        seen = []
        system.bus.subscribe_event(tk.CHECKPOINT_RESTORE_FALLBACK,
                                   seen.append)
        scheduler._restore_verified(job)
        assert len(seen) == 1
        assert seen[0].payload["fallback"] == "restart"
        assert seen[0].payload["discarded"] == 1
        assert job.checkpointed_progress == 0.0
        # The corrupt image was discarded, never shipped.
        assert scheduler.store.fetch(job.id) is None
        counter = system.bus.metrics.counter("checkpoint.restore_fallback")
        assert counter.value == 1

    def test_clean_restore_emits_nothing(self):
        sim, system = build(hosts=0)
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        seen = []
        system.bus.subscribe_event(tk.CHECKPOINT_RESTORE_FALLBACK,
                                   seen.append)
        scheduler._restore_verified(job)
        assert seen == []

    def test_generations_config_reaches_store(self):
        sim, system = build(config=CondorConfig(checkpoint_generations=3))
        assert system.scheduler("home").store.generations == 3


class TestSliceAccounting:
    def test_execution_slices_reported_home(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=2 * HOUR,
                  syscall_rate=0.0)
        system.submit(job)
        sim.run(until=DAY)
        assert job.finished
        # One uninterrupted slice: remote CPU equals demand exactly.
        assert job.remote_cpu_seconds == pytest.approx(2 * HOUR, abs=0.5)
        host_ledger = system.station("h0").ledger
        assert host_ledger.totals["remote_job"] == pytest.approx(
            2 * HOUR, abs=0.5
        )
