"""Focused unit tests of the local scheduler's less-travelled paths."""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    SchedulingError,
    StationSpec,
    events,
)
from repro.core import job as jobstate
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import DAY, HOUR, Simulation


def build(hosts=1, config=None, home_disk=None):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=home_disk)]
    specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
              for i in range(hosts)]
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    system.start()
    return sim, system


class TestSubmission:
    def test_wrong_home_rejected(self):
        sim, system = build()
        job = Job(user="u", home="elsewhere", demand_seconds=HOUR)
        with pytest.raises(SchedulingError):
            system.scheduler("home").submit(job)

    def test_submit_stores_initial_image(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        store = system.scheduler("home").store
        image = store.fetch(job.id)
        assert image is not None
        assert image.cpu_progress == 0.0

    def test_completed_job_image_discarded(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        sim.run(until=DAY)
        assert job.finished
        assert system.scheduler("home").store.fetch(job.id) is None


class TestRemoval:
    def test_remove_pending_job(self):
        sim, system = build(hosts=0)
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        system.scheduler("home").remove(job)
        assert job.state == jobstate.REMOVED
        assert system.queue_length() == 0
        assert system.bus.counts[events.JOB_REMOVED] == 1

    def test_remove_running_job_rejected(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=10 * HOUR)
        system.submit(job)
        sim.run(until=HOUR)
        assert job.state == jobstate.RUNNING
        with pytest.raises(SchedulingError):
            system.scheduler("home").remove(job)

    def test_removed_job_frees_disk(self):
        sim, system = build(hosts=0, home_disk=1.0)
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR)
        system.submit(job)
        used_before = system.station("home").disk.used_mb
        scheduler.remove(job)
        assert system.station("home").disk.used_mb < used_before


class TestShadows:
    def test_shadow_created_on_placement_and_retired_on_completion(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  syscall_rate=1.0)
        system.submit(job)
        sim.run(until=10 * 60.0)
        assert job.id in scheduler.shadows
        sim.run(until=DAY)
        assert job.finished
        assert job.id not in scheduler.shadows

    def test_shadow_support_matches_job_accounting(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  syscall_rate=2.0)
        system.submit(job)
        sim.run(until=DAY)
        # 2 calls/s * 10 ms * 3600 s = 72 s of shadow support.
        assert job.support_seconds["syscall"] == pytest.approx(72.0,
                                                               rel=0.01)


class TestGrantCornerCases:
    def test_grant_with_empty_queue_is_ignored(self):
        sim, system = build()
        scheduler = system.scheduler("home")
        # Inject a spurious grant directly.
        scheduler._handle_grant({"host": "h0", "free_mb": 100.0,
                                 "arch": "vax"})
        sim.run(until=300.0)
        assert system.station("h0").running_job is None

    def test_daemon_overhead_accrues_hourly(self):
        sim, system = build(hosts=0)
        sim.run(until=10 * HOUR)
        ledger = system.station("home").ledger
        expected = 10 * HOUR * 0.0025
        assert ledger.totals["scheduler"] == pytest.approx(expected,
                                                           rel=0.01)

    def test_zero_daemon_load_config(self):
        sim, system = build(hosts=0,
                            config=CondorConfig(scheduler_daemon_load=0.0))
        sim.run(until=10 * HOUR)
        assert system.station("home").ledger.totals["scheduler"] == 0.0


class TestSliceAccounting:
    def test_execution_slices_reported_home(self):
        sim, system = build()
        job = Job(user="u", home="home", demand_seconds=2 * HOUR,
                  syscall_rate=0.0)
        system.submit(job)
        sim.run(until=DAY)
        assert job.finished
        # One uninterrupted slice: remote CPU equals demand exactly.
        assert job.remote_cpu_seconds == pytest.approx(2 * HOUR, abs=0.5)
        host_ledger = system.station("h0").ledger
        assert host_ledger.totals["remote_job"] == pytest.approx(
            2 * HOUR, abs=0.5
        )
