"""Tests for the future-work extensions: architectures and reservations."""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    StationSpec,
    events,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.sim import DAY, HOUR, Simulation, SimulationError

FOREVER = 10_000_000.0


def home_spec(name="home"):
    return StationSpec(name, owner_model=AlwaysActiveOwner())


class TestArchitectures:
    def build(self, host_archs, config=None):
        sim = Simulation()
        specs = [home_spec()]
        specs += [
            StationSpec(f"h{i}", owner_model=NeverActiveOwner(), arch=arch)
            for i, arch in enumerate(host_archs)
        ]
        system = CondorSystem(sim, specs, config=config,
                              coordinator_host="home")
        system.start()
        return sim, system

    def test_job_needs_architectures(self):
        with pytest.raises(SimulationError):
            Job(user="u", home="home", demand_seconds=HOUR,
                architectures=())

    def test_runs_on_checks_binary_availability(self):
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  architectures=("vax", "sun"))
        assert job.runs_on("vax") and job.runs_on("sun")
        assert not job.runs_on("mips")

    def test_vax_job_never_placed_on_sun_station(self):
        sim, system = self.build(["sun", "sun"])
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  architectures=("vax",))
        system.submit(job)
        sim.run(until=4 * HOUR)
        assert not job.placements
        assert job.state == "pending"

    def test_dual_binary_job_uses_either(self):
        sim, system = self.build(["sun"])
        job = Job(user="u", home="home", demand_seconds=HOUR,
                  architectures=("vax", "sun"))
        system.submit(job)
        sim.run(until=4 * HOUR)
        assert job.finished
        assert job.locked_arch == "sun"

    def test_checkpoint_locks_architecture(self):
        # The job starts on the lone sun station; when its owner returns
        # for good, the job may NOT continue on the vax station even
        # though a vax binary exists — its checkpoint is sun-only (§5(4)).
        sim = Simulation()
        specs = [
            home_spec(),
            StationSpec("sun-1", owner_model=TraceOwner([(HOUR, FOREVER)]),
                        arch="sun"),
            StationSpec("vax-1",
                        owner_model=TraceOwner([(0.0, 2 * HOUR)]),
                        arch="vax"),
        ]
        system = CondorSystem(sim, specs, coordinator_host="home")
        system.start()
        job = Job(user="u", home="home", demand_seconds=10 * HOUR,
                  architectures=("vax", "sun"))
        system.submit(job)
        sim.run(until=DAY)
        assert job.locked_arch == "sun"
        assert job.placements and set(job.placements) == {"sun-1"}
        assert not job.finished            # stranded: no sun machine free
        assert job.checkpointed_progress > 0

    def test_mixed_pool_schedules_both_kinds(self):
        sim, system = self.build(["vax", "sun"],
                                 config=CondorConfig(
                                     placements_per_cycle=10,
                                     grants_per_station_per_cycle=10))
        vax_job = Job(user="u", home="home", demand_seconds=HOUR,
                      architectures=("vax",))
        sun_job = Job(user="u", home="home", demand_seconds=HOUR,
                      architectures=("sun",))
        system.submit(vax_job)
        system.submit(sun_job)
        sim.run(until=6 * HOUR)
        assert vax_job.finished and vax_job.placements == ["h0"]
        assert sun_job.finished and sun_job.placements == ["h1"]

    def test_wrong_arch_grant_skipped_for_matching_job(self):
        # Queue: [sun-only, vax-only]; the only host is vax -> the vax
        # job is picked although it is second in FIFO order.
        sim, system = self.build(["vax"])
        sun_job = Job(user="u", home="home", demand_seconds=HOUR,
                      architectures=("sun",))
        vax_job = Job(user="u", home="home", demand_seconds=HOUR,
                      architectures=("vax",))
        system.submit(sun_job)
        system.submit(vax_job)
        sim.run(until=4 * HOUR)
        assert vax_job.finished
        assert not sun_job.placements


class TestReservations:
    def build_contended(self, pool=4):
        """A pool fully held by a heavy user, plus a reserving light user."""
        sim = Simulation()
        specs = [home_spec("heavy"), home_spec("light")]
        specs += [StationSpec(f"p{i}", owner_model=NeverActiveOwner())
                  for i in range(pool)]
        config = CondorConfig(placements_per_cycle=10,
                              grants_per_station_per_cycle=10)
        system = CondorSystem(sim, specs, config=config,
                              coordinator_host="heavy")
        system.start()
        heavy_jobs = []
        for i in range(pool * 3):
            job = Job(user="H", home="heavy", demand_seconds=20 * HOUR)
            system.submit(job)
            heavy_jobs.append(job)
        return sim, system, heavy_jobs

    def test_reservation_validation(self):
        sim, system, _ = self.build_contended()
        with pytest.raises(SimulationError):
            system.reservations.reserve("light", 0, 100.0, HOUR)
        with pytest.raises(SimulationError):
            system.reservations.reserve("light", 1, 100.0, 0)
        sim.run(until=500.0)
        with pytest.raises(SimulationError):
            system.reservations.reserve("light", 1, 100.0, HOUR)

    def test_reserved_capacity_preempts_the_pool(self):
        sim, system, heavy_jobs = self.build_contended(pool=4)
        reservation_start = 4 * HOUR
        system.reservations.reserve("light", 3, reservation_start, 6 * HOUR)
        sim.run(until=reservation_start)
        # Pool is saturated by the heavy user before the window opens.
        running = sum(1 for j in heavy_jobs if j.state == "running")
        assert running == 4

        light_jobs = [Job(user="L", home="light", demand_seconds=2 * HOUR)
                      for _ in range(3)]
        for job in light_jobs:
            system.submit(job)
        sim.run(until=reservation_start + HOUR)
        # Within the window the light user holds the reserved 3 machines.
        running_light = sum(1 for j in light_jobs
                            if j.state == "running")
        assert running_light == 3
        assert sum(j.priority_preemptions for j in heavy_jobs) >= 3

    def test_capacity_returns_after_window(self):
        sim, system, heavy_jobs = self.build_contended(pool=3)
        system.reservations.reserve("light", 2, 2 * HOUR, 2 * HOUR)
        light = Job(user="L", home="light", demand_seconds=HOUR)
        sim.schedule(2 * HOUR, lambda: system.submit(light))
        sim.run(until=12 * HOUR)
        assert light.finished
        # After the window the heavy user repopulates the whole pool.
        running_heavy = sum(1 for j in heavy_jobs if j.state == "running")
        assert running_heavy == 3

    def test_cancelled_reservation_has_no_effect(self):
        sim, system, heavy_jobs = self.build_contended(pool=3)
        reservation = system.reservations.reserve("light", 3, 2 * HOUR,
                                                  2 * HOUR)
        system.reservations.cancel(reservation)
        light = Job(user="L", home="light", demand_seconds=30 * 60.0)
        sim.schedule(2 * HOUR, lambda: system.submit(light))
        sim.run(until=2 * HOUR + 10 * 60.0)
        # No reserved burst: at most the normal Up-Down path (which needs
        # time to preempt one machine) — certainly no 3-machine grab.
        running_light = 1 if light.state == "running" else 0
        preempted = sum(j.priority_preemptions for j in heavy_jobs)
        assert preempted <= 1
        assert running_light <= 1

    def test_reservation_without_pending_jobs_grants_nothing(self):
        sim, system, heavy_jobs = self.build_contended(pool=3)
        system.reservations.reserve("light", 3, 2 * HOUR, HOUR)
        sim.run(until=3 * HOUR)
        # The beneficiary queued nothing: nobody is disturbed.
        assert sum(j.priority_preemptions for j in heavy_jobs) == 0

    def test_reserved_counts_accumulate(self):
        sim, system, _ = self.build_contended()
        system.reservations.reserve("light", 2, 1000.0, HOUR)
        system.reservations.reserve("light", 1, 1000.0, HOUR)
        sim.run(until=1500.0)
        assert system.reservations.reserved_counts() == {"light": 3}
