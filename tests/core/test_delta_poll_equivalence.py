"""Golden-trace equivalence: delta-state coordinator vs full polling.

The delta protocol is a *performance* change, not a policy change: on a
healthy network the coordinator must make exactly the decisions the 1988
full-poll build makes.  The strongest form of that claim is checked
here — the complete month-long 23-station experiment produces a
byte-identical telemetry trace under both ``coordinator_mode`` settings
(same grants, same preemptions, same job lifecycles, same ledger
entries, in the same order at the same simulated instants).

The overhead model is pinned to ``per_station`` for the byte-level
comparison because ``auto`` deliberately charges delta cycles by work
done, which changes the ledger stream (by design).  A separate check
confirms that under ``auto`` the *decision* stream — grants and
preemptions per cycle — is still identical.
"""

import json

import pytest

from repro.analysis import paper
from repro.analysis.experiment import ExperimentRun
from repro.core.config import CondorConfig
from repro.core.job import reset_job_ids
from repro.telemetry import kinds

SEED = 42


def _month(mode, trace_path, days, overhead_model):
    reset_job_ids()
    config = CondorConfig(
        max_machines_per_station=6,
        coordinator_mode=mode,
        coordinator_overhead_model=overhead_model,
    )
    return ExperimentRun(seed=SEED, days=days, config=config,
                         trace_path=str(trace_path)).execute()


def _cycles(path):
    """The COORDINATOR_CYCLE records of a trace, in order."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            if record["kind"] == kinds.COORDINATOR_CYCLE:
                records.append(record)
    return records


@pytest.fixture(scope="module")
def month_traces(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden")
    delta_path = root / "delta.jsonl"
    poll_path = root / "poll.jsonl"
    _month("delta", delta_path, paper.OBSERVATION_DAYS, "per_station")
    _month("poll", poll_path, paper.OBSERVATION_DAYS, "per_station")
    return delta_path, poll_path


class TestGoldenTrace:
    def test_month_traces_byte_identical(self, month_traces):
        delta_path, poll_path = month_traces
        delta_bytes = delta_path.read_bytes()
        assert delta_bytes == poll_path.read_bytes()
        assert len(delta_bytes) > 0

    def test_grant_and_preemption_sequences_identical(self, month_traces):
        # Implied by byte identity, but asserted explicitly so a future
        # trace-format change cannot silently weaken the guarantee.
        delta_path, poll_path = month_traces
        delta_cycles = _cycles(delta_path)
        poll_cycles = _cycles(poll_path)
        assert len(delta_cycles) == len(poll_cycles) > 0
        for d, p in zip(delta_cycles, poll_cycles):
            assert d["t"] == p["t"]
            assert d["payload"]["grants"] == p["payload"]["grants"]
            assert d["payload"]["preemptions"] == p["payload"]["preemptions"]
            assert d["payload"]["gang_grants"] == p["payload"]["gang_grants"]

    def test_no_view_repairs_on_healthy_network(self, month_traces):
        # Every push is delivered on the loss-free LAN, so anti-entropy
        # polls must never find drift to repair (a repair event here
        # would also break byte identity).
        delta_path, _ = month_traces
        with open(delta_path, encoding="utf-8") as fh:
            assert not any(
                json.loads(line)["kind"] == kinds.COORDINATOR_VIEW_REPAIR
                for line in fh
            )


class TestAutoOverheadDecisions:
    def test_auto_model_keeps_decisions_identical(self, tmp_path):
        # Under the default "auto" model the ledger streams differ (that
        # is the point: delta cycles charge by work done), but the
        # allocation decisions must not.
        delta_path = tmp_path / "delta.jsonl"
        poll_path = tmp_path / "poll.jsonl"
        _month("delta", delta_path, 8, "auto")
        _month("poll", poll_path, 8, "auto")
        delta_cycles = _cycles(delta_path)
        poll_cycles = _cycles(poll_path)
        assert len(delta_cycles) == len(poll_cycles) > 0
        for d, p in zip(delta_cycles, poll_cycles):
            assert d["t"] == p["t"]
            assert d["payload"]["grants"] == p["payload"]["grants"]
            assert d["payload"]["preemptions"] == p["payload"]["preemptions"]
