"""Tests for the Up-Down policy and the baseline allocation policies."""

import pytest

from repro.core import FcfsPolicy, RandomPolicy, RoundRobinPolicy, UpDownPolicy
from repro.sim import MINUTE, RandomStream, SimulationError


class TestUpDownIndex:
    def test_starts_at_zero(self):
        policy = UpDownPolicy()
        policy.register_station("a")
        assert policy.index("a") == 0.0

    def test_holding_capacity_raises_index(self):
        policy = UpDownPolicy(up_rate=1.0)
        policy.register_station("a")
        policy.update(set(), {"a": 3}, 2 * MINUTE)
        assert policy.index("a") == pytest.approx(6.0)  # 3 machines * 2 min

    def test_wanting_unserved_lowers_index(self):
        policy = UpDownPolicy(down_rate=1.0)
        policy.register_station("a")
        policy.update({"a"}, {}, 2 * MINUTE)
        assert policy.index("a") == pytest.approx(-2.0)

    def test_idle_index_decays_toward_zero(self):
        policy = UpDownPolicy(decay_rate=0.5)
        policy.register_station("a")
        policy.update(set(), {"a": 1}, 10 * MINUTE)   # index -> 10
        policy.update(set(), {}, 10 * MINUTE)         # decays by 5
        assert policy.index("a") == pytest.approx(5.0)
        policy.update(set(), {}, 100 * MINUTE)        # clamps at 0
        assert policy.index("a") == 0.0

    def test_negative_index_decays_up_toward_zero(self):
        policy = UpDownPolicy(decay_rate=0.5)
        policy.register_station("a")
        policy.update({"a"}, {}, 10 * MINUTE)         # index -> -10
        policy.update(set(), {}, 10 * MINUTE)
        assert policy.index("a") == pytest.approx(-5.0)

    def test_holding_dominates_wanting(self):
        # A station both holding machines and wanting more still goes up.
        policy = UpDownPolicy()
        policy.register_station("a")
        policy.update({"a"}, {"a": 2}, MINUTE)
        assert policy.index("a") > 0

    def test_negative_rates_rejected(self):
        with pytest.raises(SimulationError):
            UpDownPolicy(up_rate=-1.0)


class TestUpDownRanking:
    def test_most_deprived_first(self):
        policy = UpDownPolicy()
        for name in ("heavy", "light"):
            policy.register_station(name)
        policy.update(set(), {"heavy": 10}, 10 * MINUTE)
        policy.update({"light"}, {"heavy": 10}, 2 * MINUTE)
        assert policy.rank_requesters(["heavy", "light"]) == ["light", "heavy"]

    def test_tie_broken_by_name(self):
        policy = UpDownPolicy()
        policy.register_station("b")
        policy.register_station("a")
        assert policy.rank_requesters(["b", "a"]) == ["a", "b"]


class TestUpDownPreemption:
    def make_policy(self):
        policy = UpDownPolicy(preemption_margin=2.0)
        for name in ("heavy", "light", "host1", "host2"):
            policy.register_station(name)
        return policy

    def test_preempts_richest_holder(self):
        policy = self.make_policy()
        policy.update(set(), {"heavy": 5}, 10 * MINUTE)   # heavy index 50
        victim = policy.choose_preemption_victim(
            "light", [("host1", "heavy"), ("host2", "light")]
        )
        assert victim == "host1"

    def test_never_preempts_own_jobs(self):
        policy = self.make_policy()
        policy.update(set(), {"light": 1}, 100 * MINUTE)
        victim = policy.choose_preemption_victim(
            "light", [("host1", "light")]
        )
        assert victim is None

    def test_margin_prevents_thrash(self):
        policy = self.make_policy()
        # Indexes equal: no preemption despite a holder existing.
        victim = policy.choose_preemption_victim(
            "light", [("host1", "heavy")]
        )
        assert victim is None

    def test_no_holders_no_victim(self):
        policy = self.make_policy()
        assert policy.choose_preemption_victim("light", []) is None


class TestFcfsPolicy:
    def test_order_of_first_request_wins(self):
        policy = FcfsPolicy()
        policy.update({"b"}, {}, 120.0)
        policy.update({"b", "a"}, {}, 120.0)
        assert policy.rank_requesters(["a", "b"]) == ["b", "a"]

    def test_position_lost_when_queue_drains(self):
        policy = FcfsPolicy()
        policy.update({"b"}, {}, 120.0)
        policy.update(set(), {}, 120.0)           # b's queue drained
        policy.update({"a", "b"}, {}, 120.0)      # both re-request
        assert policy.rank_requesters(["a", "b"]) == ["a", "b"]

    def test_no_preemption(self):
        policy = FcfsPolicy()
        assert not policy.allows_preemption
        assert policy.choose_preemption_victim("a", [("h", "b")]) is None


class TestRandomPolicy:
    def test_needs_stream(self):
        with pytest.raises(SimulationError):
            RandomPolicy(None)

    def test_ranking_is_a_permutation(self):
        policy = RandomPolicy(RandomStream(1))
        names = ["a", "b", "c", "d"]
        ranked = policy.rank_requesters(names)
        assert sorted(ranked) == names

    def test_orders_vary_across_calls(self):
        policy = RandomPolicy(RandomStream(1))
        names = [f"s{i}" for i in range(8)]
        orders = {tuple(policy.rank_requesters(names)) for _ in range(20)}
        assert len(orders) > 1


class TestRoundRobinPolicy:
    def test_rotation(self):
        policy = RoundRobinPolicy()
        names = ["a", "b", "c"]
        assert policy.rank_requesters(names) == ["a", "b", "c"]
        assert policy.rank_requesters(names) == ["b", "c", "a"]
        assert policy.rank_requesters(names) == ["c", "a", "b"]

    def test_empty_ok(self):
        assert RoundRobinPolicy().rank_requesters([]) == []
