"""Federated coordination: pool partitioning, cross-pool leases, and
the two guarantees the flocking tree must preserve.

* **K=1 identity** — with a single pool there is no matchmaker and the
  pool coordinator IS the delta-state coordinator, so the complete
  experiment trace must be byte-identical to ``coordinator_mode=
  "delta"``.  This is the federation analogue of the delta-vs-poll
  golden trace: federation is a topology change, not a policy change.
* **Fairness composes** — holdings are charged to the requester's
  Up-Down index no matter which pool the host machine came from, so a
  heavy user in one pool cannot borrow the federation past fair share.
"""

import pytest

from repro.core import CondorConfig, CondorSystem, Job, StationSpec, events
from repro.core.federation import federation_pools, pool_name
from repro.core.job import reset_job_ids
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.metrics import jobs as job_metrics
from repro.sim import HOUR, MINUTE, Simulation, SimulationError
from repro.analysis.experiment import ExperimentRun
from repro.workload.users import paper_profiles

SEED = 42


class TestPartitioning:
    def test_contiguous_near_equal_pools(self):
        names = [f"s{i}" for i in range(8)]
        pools = federation_pools(names, 3)
        assert pools == [["s0", "s1", "s2"], ["s3", "s4", "s5"],
                         ["s6", "s7"]]

    def test_single_pool_gets_everything(self):
        names = ["a", "b", "c"]
        assert federation_pools(names, 1) == [names]

    def test_rejects_bad_pool_counts(self):
        with pytest.raises(SimulationError):
            federation_pools(["a", "b"], 0)
        with pytest.raises(SimulationError):
            federation_pools(["a", "b"], 3)

    def test_pool_names(self):
        # K=1 reuses the delta-mode name — that is what makes the K=1
        # trace byte-identical to the single-coordinator trace.
        assert pool_name(0, 1) == "coordinator"
        assert pool_name(0, 4) == "coordinator.0"
        assert pool_name(3, 4) == "coordinator.3"


def federated_system(sim, specs, **overrides):
    config = CondorConfig(
        coordinator_mode="federated",
        federation_pools=overrides.pop("pools", 2),
        max_machines_per_station=6,
        **overrides,
    )
    return CondorSystem(sim, specs, config=config)


def lease_specs(lender_owner=None):
    """Two pools of two: pool 0 all idle (the lender side), pool 1 all
    owner-occupied (so its user's backlog can only run remotely)."""
    return [
        StationSpec("l0", owner_model=NeverActiveOwner()),
        StationSpec("l1", owner_model=lender_owner or NeverActiveOwner()),
        StationSpec("b0", owner_model=AlwaysActiveOwner()),
        StationSpec("b1", owner_model=AlwaysActiveOwner()),
    ]


def collect(bus, kind):
    records = []
    bus.subscribe_event(kind, lambda evt: records.append(evt.payload))
    return records


class TestCrossPoolLeases:
    def test_single_pool_has_no_matchmaker(self):
        sim = Simulation()
        system = federated_system(sim, lease_specs(), pools=1)
        assert system.matchmaker is None
        assert len(system.coordinators) == 1
        assert system.coordinator.name == "coordinator"

    def test_surplus_flows_to_deficit_pool(self):
        sim = Simulation()
        system = federated_system(
            sim, lease_specs(),
            federation_lease_duration=8 * HOUR,
        )
        grants = collect(system.bus, events.CROSS_POOL_LEASE_GRANTED)
        placed = []
        system.bus.subscribe(
            events.JOB_PLACED,
            lambda job, host, home: placed.append((host, home)),
        )
        system.start()
        job = Job(user="A", home="b0", demand_seconds=1 * HOUR)
        system.submit(job)
        sim.run(until=3 * HOUR)
        # Pool 1 has zero idle capacity, so the job can only have run on
        # a machine borrowed from pool 0 through the matchmaker.
        assert grants and grants[0]["borrower"] == pool_name(1, 2)
        assert placed and placed[0][0] in ("l0", "l1")
        assert job.finished
        assert system.metrics.counter(
            "federation.stations_borrowed").value >= 1

    def test_lender_never_ships_its_host_station(self):
        # Pool 0's coordinator runs on l0; only l1 is lendable.
        sim = Simulation()
        system = federated_system(
            sim, lease_specs(),
            federation_lease_duration=8 * HOUR,
        )
        grants = collect(system.bus, events.CROSS_POOL_LEASE_GRANTED)
        system.start()
        for _ in range(3):
            system.submit(Job(user="A", home="b0",
                              demand_seconds=2 * HOUR))
        sim.run(until=2 * HOUR)
        lent = [s for g in grants for s in g["stations"]]
        assert lent and "l0" not in lent

    def test_expiry_preempts_and_returns_the_station(self):
        sim = Simulation()
        system = federated_system(
            sim, lease_specs(),
            federation_lease_duration=30 * MINUTE,
        )
        returns = collect(system.bus, events.CROSS_POOL_LEASE_RETURNED)
        system.start()
        job = Job(user="A", home="b0", demand_seconds=5 * HOUR)
        system.submit(job)
        sim.run(until=2 * HOUR)
        # The lease ran out mid-job: the borrower must checkpoint the
        # foreign job off through the normal vacate path and hand the
        # station back (then, still needy, borrow again under a fresh
        # lease — hence "at least one" return, not exactly one).
        reasons = {r["reason"] for r in returns}
        assert "lease_expired" in reasons
        assert job.checkpoint_count >= 1
        assert not job.finished and job.in_system
        self.assert_membership_consistent(system)

    def test_owner_return_sends_the_station_home(self):
        sim = Simulation()
        # l1's owner comes back for good two hours in.
        system = federated_system(
            sim, lease_specs(TraceOwner([(2 * HOUR, 10 * HOUR)])),
            federation_lease_duration=8 * HOUR,
        )
        grants = collect(system.bus, events.CROSS_POOL_LEASE_GRANTED)
        returns = collect(system.bus, events.CROSS_POOL_LEASE_RETURNED)
        system.start()
        system.submit(Job(user="A", home="b0", demand_seconds=6 * HOUR))
        sim.run(until=4 * HOUR)
        assert any("l1" in g["stations"] for g in grants)
        l1_returns = [r for r in returns if r["station"] == "l1"]
        assert l1_returns and l1_returns[0]["reason"] == "owner_return"
        # Back in the lender's view, gone from the borrower's books.
        lender, borrower = system.coordinators
        assert lender.view.member("l1")
        assert "l1" not in borrower._borrowed
        self.assert_membership_consistent(system)

    @staticmethod
    def assert_membership_consistent(system):
        """Every station belongs to exactly one pool's view."""
        for name in system.stations:
            owners = [c.name for c in system.coordinators
                      if c.view.member(name)]
            assert len(owners) == 1, (name, owners)


class TestSinglePoolGoldenTrace:
    """Federated K=1 must be byte-identical to the delta coordinator."""

    @staticmethod
    def _run(mode, trace_path):
        reset_job_ids()
        config = CondorConfig(max_machines_per_station=6,
                              coordinator_mode=mode,
                              federation_pools=1)
        return ExperimentRun(seed=SEED, days=8, config=config,
                             trace_path=str(trace_path)).execute()

    def test_k1_trace_byte_identical_to_delta(self, tmp_path):
        delta_path = tmp_path / "delta.jsonl"
        federated_path = tmp_path / "federated.jsonl"
        self._run("delta", delta_path)
        self._run("federated", federated_path)
        delta_bytes = delta_path.read_bytes()
        assert len(delta_bytes) > 0
        assert delta_bytes == federated_path.read_bytes()


class TestFederatedFairness:
    """Up-Down fairness must compose across pools: holdings are charged
    to the requester wherever the host machine came from, so the heavy
    user cannot borrow the federation past fair share."""

    DAYS = 6
    STATIONS = 24
    #: Table 1's users spread over the four pools (6 stations each)
    #: instead of the default first-five-stations homes, which would
    #: put everyone in pool 0.
    HOMES = {"A": "ws-01", "B": "ws-07", "C": "ws-13",
             "D": "ws-19", "E": "ws-02"}

    def run(self, pools):
        reset_job_ids()
        horizon = self.DAYS * 24 * HOUR
        profiles = paper_profiles(self.HOMES, horizon, job_scale=0.2)
        kwargs = {"pools": pools} if pools else {}
        return ExperimentRun(
            seed=SEED, days=self.DAYS, stations=self.STATIONS,
            profiles=profiles,
            config=CondorConfig(max_machines_per_station=6),
            **kwargs,
        ).execute()

    @pytest.fixture(scope="class")
    def runs(self):
        return self.run(pools=4), self.run(pools=None)

    def test_leases_flow_in_the_federated_run(self, runs):
        federated, _ = runs
        assert federated.system.matchmaker.leases_brokered > 0

    def test_light_users_wait_less_than_the_heavy_user(self, runs):
        federated, _ = runs
        light = job_metrics.average_wait_ratio(federated.light_jobs())
        heavy = job_metrics.average_wait_ratio(federated.heavy_jobs())
        assert light < heavy

    def test_every_user_gets_service(self, runs):
        federated, _ = runs
        by_user = {}
        for job in federated.completed_jobs:
            by_user[job.user] = by_user.get(job.user, 0) + 1
        assert set(by_user) == set(self.HOMES)

    def test_fairness_within_tolerance_of_single_pool(self, runs):
        # The federated build may shift individual placements, but the
        # light-vs-heavy service ratio must stay in the same regime as
        # the single-coordinator run over the identical workload.
        federated, single = runs
        fed_light = job_metrics.average_wait_ratio(federated.light_jobs())
        one_light = job_metrics.average_wait_ratio(single.light_jobs())
        assert fed_light <= max(3.0 * one_light, one_light + 1.0)
        fed_done = len(federated.completed_jobs)
        one_done = len(single.completed_jobs)
        assert fed_done >= 0.8 * one_done
