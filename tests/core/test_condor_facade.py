"""Tests for the CondorSystem facade itself."""

import pytest

from repro.core import CondorSystem, Job, StationSpec, UpDownPolicy
from repro.machine import NeverActiveOwner
from repro.sim import HOUR, Simulation, SimulationError


def specs(n=2):
    return [StationSpec(f"ws-{i}", owner_model=NeverActiveOwner())
            for i in range(n)]


def test_needs_stations():
    with pytest.raises(SimulationError):
        CondorSystem(Simulation(), [])


def test_duplicate_names_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        CondorSystem(sim, [StationSpec("a"), StationSpec("a")])


def test_unknown_coordinator_host_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        CondorSystem(sim, specs(), coordinator_host="ghost")


def test_coordinator_defaults_to_first_station():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    assert system.coordinator.host_station is system.station("ws-0")


def test_unknown_station_lookup():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    with pytest.raises(SimulationError):
        system.scheduler("nope")
    with pytest.raises(SimulationError):
        system.station("nope")


def test_run_autostarts():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    job = Job(user="u", home="ws-0", demand_seconds=HOUR)
    system.submit(job)
    system.run(until=4 * HOUR)   # no explicit start()
    assert job.finished


def test_default_policy_is_updown():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    assert isinstance(system.policy, UpDownPolicy)


def test_completed_jobs_listing():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    job = Job(user="u", home="ws-0", demand_seconds=HOUR)
    system.submit(job)
    system.run(until=4 * HOUR)
    assert system.completed_jobs() == [job]


def test_finalize_closes_ledgers():
    sim = Simulation()
    system = CondorSystem(sim, specs())
    system.start()
    system.station("ws-0").owner_arrived()
    sim.run(until=HOUR)
    system.finalize()
    assert system.station("ws-0").ledger.totals["owner"] == HOUR
