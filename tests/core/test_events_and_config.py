"""Tests for the event bus and configuration validation."""

import pytest

from repro.core import CondorConfig, EventBus, events
from repro.sim import SimulationError


class TestEventBus:
    def test_publish_reaches_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(events.JOB_SUBMITTED,
                      lambda **payload: seen.append(payload))
        bus.publish(events.JOB_SUBMITTED, job="j", station="ws-1")
        assert seen == [{"job": "j", "station": "ws-1"}]

    def test_counts_increment(self):
        bus = EventBus()
        bus.publish(events.JOB_PLACED, job=None, host="h", home="m")
        bus.publish(events.JOB_PLACED, job=None, host="h", home="m")
        assert bus.counts[events.JOB_PLACED] == 2

    def test_multiple_subscribers_all_called(self):
        bus = EventBus()
        seen = []
        for tag in ("a", "b"):
            bus.subscribe(events.JOB_COMPLETED,
                          lambda tag=tag, **payload: seen.append(tag))
        bus.publish(events.JOB_COMPLETED, job=None, station="s")
        assert sorted(seen) == ["a", "b"]

    def test_unknown_event_rejected_on_publish(self):
        with pytest.raises(SimulationError):
            EventBus().publish("job_teleported")

    def test_unknown_event_rejected_on_subscribe(self):
        with pytest.raises(SimulationError):
            EventBus().subscribe("job_teleported", lambda **kw: None)

    def test_publish_without_subscribers_is_fine(self):
        EventBus().publish(events.JOB_KILLED, job=None, host="h")


class TestCondorConfig:
    def test_defaults_match_paper(self):
        config = CondorConfig()
        assert config.poll_interval == 120.0
        assert config.grace_period == 300.0
        assert config.placements_per_cycle == 1
        assert not config.kill_on_owner_return
        assert config.periodic_checkpoint_interval is None
        assert config.max_machines_per_station is None

    @pytest.mark.parametrize("kwargs", [
        {"poll_interval": 0},
        {"grace_period": -1},
        {"placements_per_cycle": -1},
        {"preemptions_per_cycle": -2},
        {"grants_per_station_per_cycle": 0},
        {"host_selection": "astrology"},
        {"periodic_checkpoint_interval": 0},
        {"scheduler_daemon_load": 1.5},
        {"max_machines_per_station": 0},
        {"queue_discipline": "lifo"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        if "queue_discipline" in kwargs:
            # validated by the queue, not the config dataclass
            from repro.core import BackgroundJobQueue
            with pytest.raises(SimulationError):
                BackgroundJobQueue("ws", discipline=kwargs["queue_discipline"])
            return
        with pytest.raises(SimulationError):
            CondorConfig(**kwargs)

    def test_butler_variant(self):
        config = CondorConfig(kill_on_owner_return=True)
        assert config.kill_on_owner_return

    def test_periodic_checkpoint_variant(self):
        config = CondorConfig(periodic_checkpoint_interval=600.0)
        assert config.periodic_checkpoint_interval == 600.0
