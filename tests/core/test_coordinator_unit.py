"""Coordinator-level unit tests: host selection, caps, lost hosts."""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    StationSpec,
    UpDownPolicy,
    events,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.sim import HOUR, Simulation, SimulationError
from repro.core.coordinator import Coordinator
from repro.net import Network


def build(sim, host_specs, config=None, policy=None):
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner())]
    specs.extend(host_specs)
    return CondorSystem(sim, specs, config=config, policy=policy,
                        coordinator_host="home")


def submit(system, n=1, demand=10 * HOUR, user="A", home="home"):
    jobs = []
    for _ in range(n):
        job = Job(user=user, home=home, demand_seconds=demand)
        system.submit(job)
        jobs.append(job)
    return jobs


def test_coordinator_requires_stations():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Coordinator(sim, Network(sim), [], UpDownPolicy(), None,
                    CondorConfig())


class TestHostSelection:
    def specs(self):
        # host-a was historically flappy; host-b has one long closed idle
        # interval; host-c has been idle the longest right now.
        return [
            StationSpec("host-a", owner_model=TraceOwner(
                [(100.0, 130.0), (200.0, 230.0), (300.0, 330.0)]
            )),
            StationSpec("host-b", owner_model=TraceOwner([(500.0, 530.0)])),
            StationSpec("host-c", owner_model=NeverActiveOwner()),
        ]

    def run_selection(self, mode):
        sim = Simulation()
        config = CondorConfig(host_selection=mode)
        system = build(sim, self.specs(), config=config)
        system.start()
        placed = []
        system.bus.subscribe(
            events.JOB_PLACED,
            lambda job, host, home: placed.append(host),
        )
        sim.run(until=1000.0)   # let the owner traces play out
        submit(system, 1)
        sim.run(until=1400.0)
        return placed

    def test_arbitrary_picks_lowest_name(self):
        assert self.run_selection("arbitrary")[0] == "host-a"

    def test_longest_history_prefers_never_reclaimed(self):
        # host-c has no *closed* idle interval -> treated as infinite.
        assert self.run_selection("longest_history")[0] == "host-c"

    def test_current_idle_prefers_longest_current_stretch(self):
        # At poll time host-c has been idle since t=0.
        assert self.run_selection("current_idle")[0] == "host-c"


class TestPerStationCap:
    def test_cap_limits_concurrent_machines(self):
        sim = Simulation()
        config = CondorConfig(max_machines_per_station=2)
        hosts = [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
                 for i in range(5)]
        system = build(sim, hosts, config=config)
        system.start()
        jobs = submit(system, 5)
        sim.run(until=2 * HOUR)
        running = sum(1 for j in jobs if j.state == "running")
        assert running == 2

    def test_uncapped_uses_whole_pool(self):
        sim = Simulation()
        hosts = [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
                 for i in range(5)]
        system = build(sim, hosts)
        system.start()
        jobs = submit(system, 5)
        sim.run(until=2 * HOUR)
        running = sum(1 for j in jobs if j.state == "running")
        assert running == 5

    def test_capped_station_never_triggers_preemption(self):
        sim = Simulation()
        config = CondorConfig(max_machines_per_station=1)
        hosts = [StationSpec("h0", owner_model=NeverActiveOwner())]
        system = build(sim, hosts, config=config)
        system.start()
        submit(system, 3)   # same home station wants more than its cap
        sim.run(until=4 * HOUR)
        assert system.coordinator.preemptions_ordered == 0


class TestLostHostDetection:
    def test_coordinator_notifies_home_of_dead_host(self):
        sim = Simulation()
        system = build(sim, [StationSpec("h0",
                                         owner_model=NeverActiveOwner())])
        system.start()
        job = submit(system, 1, demand=5 * HOUR)[0]
        sim.run(until=600.0)
        assert job.state == "running"
        system.scheduler("h0").crash()
        sim.run(until=1200.0)
        assert job.state == "pending"    # rolled back and requeued
        assert system.bus.counts[events.HOST_LOST] == 1

    def test_lost_notice_sent_once_per_outage(self):
        sim = Simulation()
        system = build(sim, [StationSpec("h0",
                                         owner_model=NeverActiveOwner())])
        system.start()
        submit(system, 1, demand=100 * HOUR)
        sim.run(until=600.0)
        system.scheduler("h0").crash()
        sim.run(until=3000.0)    # several polls while the host stays dead
        assert system.bus.counts[events.HOST_LOST] == 1


class TestCycleTelemetry:
    def test_cycle_event_payload(self):
        sim = Simulation()
        system = build(sim, [StationSpec("h0",
                                         owner_model=NeverActiveOwner())])
        cycles = []
        system.bus.subscribe(events.COORDINATOR_CYCLE,
                             lambda **payload: cycles.append(payload))
        system.start()
        submit(system, 1)
        sim.run(until=130.0)
        assert len(cycles) == 1
        payload = cycles[0]
        assert payload["wanting"] == ["home"]
        assert payload["grants"] == [("home", "h0")]
        assert payload["unreachable"] == []

    def test_counters(self):
        sim = Simulation()
        system = build(sim, [StationSpec("h0",
                                         owner_model=NeverActiveOwner())])
        system.start()
        submit(system, 1, demand=HOUR)
        sim.run(until=3 * HOUR)
        assert system.coordinator.cycles >= 80
        assert system.coordinator.grants_issued == 1


class TestPollParallelism:
    def test_poll_duration_bounded_by_one_timeout(self):
        # With many crashed stations, polls must time out concurrently,
        # not sequentially — otherwise a cycle would take N x timeout and
        # the coordinator would fall behind its own schedule.
        sim = Simulation()
        specs = [StationSpec("home", owner_model=AlwaysActiveOwner())]
        specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
                  for i in range(20)]
        system = CondorSystem(sim, specs, coordinator_host="home")
        system.start()
        for i in range(20):
            system.scheduler(f"h{i}").crash()
        cycles = []
        system.bus.subscribe(events.COORDINATOR_CYCLE,
                             lambda **payload: cycles.append(payload))
        sim.run(until=600.0)
        # Cycles still complete roughly every poll interval + one timeout.
        assert len(cycles) >= 3
        assert all(len(c["unreachable"]) == 20 for c in cycles)


class TestGangWithReservations:
    def test_same_cycle_reservation_beats_gang(self):
        # Reservation service runs before gang co-allocation: when both
        # want the same machines in one cycle, the reservation wins and
        # the gang waits.
        sim = Simulation()
        specs = [
            StationSpec("res-home", owner_model=AlwaysActiveOwner()),
            StationSpec("gang-home", owner_model=AlwaysActiveOwner()),
            StationSpec("p0", owner_model=NeverActiveOwner()),
            StationSpec("p1", owner_model=NeverActiveOwner()),
        ]
        system = CondorSystem(sim, specs, coordinator_host="res-home")
        system.start()
        system.reservations.reserve("res-home", 2, 60.0, 4 * HOUR)
        from repro.core import GangJob
        gang = GangJob(user="g", home="gang-home",
                       demand_seconds=HOUR, width=2)
        system.submit_gang(gang)
        reserved = [Job(user="r", home="res-home", demand_seconds=HOUR)
                    for _ in range(2)]
        sim.schedule(60.0, lambda: [system.submit(j) for j in reserved])
        sim.run(until=20 * 60.0)
        assert all(j.state == "running" for j in reserved)
        assert not gang.launched
        sim.run(until=6 * HOUR)
        assert gang.finished   # launches once the reservation drains
