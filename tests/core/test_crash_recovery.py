"""Deterministic crash/recovery scenarios at the dangerous instants.

Each test pins a failure to the *middle* of a distributed operation —
an image transfer, a checkpoint-back, a coordinator epoch — and asserts
the paper's recovery promise: the job completes exactly once, nothing
is double-hosted, and the accounting identity (useful remote CPU ==
demand) survives the detour.  No randomness is involved: owner activity
comes from replayed traces, so every run is exactly reproducible.
"""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    InvariantChecker,
    Job,
    StationSpec,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.metrics.timeseries import PeriodicSampler
from repro.sim import HOUR, MINUTE, Simulation
from repro.telemetry import kinds


def build(sim, host_owners, config=None):
    """A home plus one station per entry of ``host_owners``."""
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0)]
    for name, owner in host_owners.items():
        specs.append(StationSpec(name, owner_model=owner))
    return CondorSystem(sim, specs, config=config, coordinator_host="home")


def collect(bus, *event_kinds):
    events = []
    for kind in event_kinds:
        bus.subscribe_event(kind, events.append)
    return events


def crash_at_transfer_midpoint(sim, system, victim, downtime,
                               dst=None, src=None):
    """Arm a one-shot observer: crash ``victim`` halfway through the next
    transfer matching ``dst``/``src``; reboot it ``downtime`` later."""
    state = {"armed": True}

    def observe(record):
        if not state["armed"]:
            return
        if dst is not None and record.dst != dst:
            return
        if src is not None and record.src != src:
            return
        state["armed"] = False
        midpoint = (record.start + record.finish) / 2.0

        def crash():
            system.scheduler(victim).crash()
            sim.schedule(downtime, system.scheduler(victim).recover)

        sim.schedule_at(midpoint, crash)

    system.network.add_transfer_observer(observe)
    return state


def run_checked(sim, system, horizon):
    checker = InvariantChecker(system)
    sampler = PeriodicSampler(sim, checker.check, interval=5 * MINUTE,
                              name="invariants")
    system.start()
    sampler.start()
    sim.run(until=horizon)
    system.finalize()
    checker.check_final()
    return checker


def test_host_crash_mid_placement_transfer_requeues_and_completes():
    sim = Simulation()
    system = build(sim, {"h0": NeverActiveOwner()})
    job = Job(user="u", home="home", demand_seconds=2 * HOUR)
    system.submit(job)
    failures = collect(system.bus, kinds.TRANSFER_FAILED,
                       kinds.JOB_PLACEMENT_FAILED)
    crash_at_transfer_midpoint(sim, system, victim="h0",
                               downtime=10 * MINUTE, dst="h0")
    run_checked(sim, system, 12 * HOUR)

    assert job.finished
    assert system.bus.counts[kinds.JOB_COMPLETED] == 1
    transfer_failures = [e for e in failures
                         if e.kind == kinds.TRANSFER_FAILED]
    assert transfer_failures
    assert transfer_failures[0].payload["purpose"] == "placement"
    assert transfer_failures[0].payload["reason"] == "endpoint_crashed"
    placement_failures = [e for e in failures
                          if e.kind == kinds.JOB_PLACEMENT_FAILED]
    assert any(e.payload["reason"] == "transfer_endpoint_crashed"
               for e in placement_failures)
    # The aborted image never started executing: nothing was wasted.
    assert job.wasted_cpu_seconds == 0.0
    useful = job.remote_cpu_seconds - job.wasted_cpu_seconds
    assert useful == pytest.approx(job.demand_seconds, abs=1.0)


def test_home_crash_mid_checkpoint_back_retries_until_delivered():
    sim = Simulation()
    # The owner reclaims h0 at 2 h (forcing a vacate with ~2 h of
    # progress to checkpoint home) and leaves again at 3 h.
    system = build(sim, {"h0": TraceOwner([(2 * HOUR, 3 * HOUR)])})
    job = Job(user="u", home="home", demand_seconds=4 * HOUR)
    system.submit(job)
    failures = collect(system.bus, kinds.TRANSFER_FAILED)
    retries = collect(system.bus, kinds.MESSAGE_RETRY)
    # Home dies halfway through the checkpoint-back and reboots 10
    # minutes later; the host must retry until the image lands.
    crash_at_transfer_midpoint(sim, system, victim="home",
                               downtime=10 * MINUTE, dst="home", src="h0")
    run_checked(sim, system, 12 * HOUR)

    assert job.finished
    assert system.bus.counts[kinds.JOB_COMPLETED] == 1
    vacate_failures = [e for e in failures
                       if e.payload["purpose"] == "vacate"]
    assert vacate_failures, "the checkpoint-back was never interrupted"
    assert vacate_failures[0].payload["reason"] == "endpoint_crashed"
    assert any(e.payload["op"] == "vacate_transfer" for e in retries)
    # The checkpointed progress survived the home outage: the rerun
    # resumed from the vacate image instead of starting over.
    assert job.wasted_cpu_seconds == 0.0
    useful = job.remote_cpu_seconds - job.wasted_cpu_seconds
    assert useful == pytest.approx(job.demand_seconds, abs=1.0)


def test_coordinator_crash_and_failover_under_delta_mode():
    sim = Simulation()
    config = CondorConfig(coordinator_mode="delta")
    system = build(sim, {"h0": NeverActiveOwner(),
                         "h1": NeverActiveOwner()}, config=config)
    first = Job(user="u", home="home", demand_seconds=1 * HOUR)
    system.submit(first)
    system.start()
    sim.run(until=10 * MINUTE)
    assert first.state == "running"

    # The coordinator dies.  Running jobs are unaffected, but a job
    # submitted during the outage cannot be granted a machine.
    system.coordinator.crash()
    stranded = Job(user="u", home="home", demand_seconds=30 * MINUTE)
    system.submit(stranded)
    sim.run(until=40 * MINUTE)
    assert stranded.state == "pending"

    # Restart on a different machine (§2.1: the coordinator is cheap to
    # move).  Its delta-mode view starts empty — every station must be
    # probed back in before scheduling resumes.
    system.coordinator.recover_at(system.stations["h0"])
    assert system.coordinator.host_station is system.stations["h0"]
    sim.run(until=4 * HOUR)
    system.finalize()

    assert first.finished and stranded.finished
    assert system.bus.counts[kinds.JOB_COMPLETED] == 2
    InvariantChecker(system).check_final()


def test_partition_zombie_is_reaped_and_books_balance():
    sim = Simulation()
    config = CondorConfig(periodic_checkpoint_interval=15 * MINUTE)
    system = build(sim, {"h0": NeverActiveOwner(),
                         "h1": NeverActiveOwner()}, config=config)
    job = Job(user="u", home="home", demand_seconds=3 * HOUR)
    system.submit(job)
    system.start()
    sim.run(until=30 * MINUTE)
    hosting = [name for name, sched in system.schedulers.items()
               if sched.hosted is not None]
    assert len(hosting) == 1

    # Cut the hosting station off.  The coordinator declares the host
    # lost, the home rolls back to the last periodic checkpoint and
    # re-places the job — while the cut-off host keeps executing a now
    # stale incarnation (a zombie) until its own lease check reaps it.
    system.network.partition([hosting[0]])
    sim.schedule_at(sim.now + 40 * MINUTE, system.network.heal)
    sampler = PeriodicSampler(sim, InvariantChecker(system).check,
                              interval=5 * MINUTE, name="invariants")
    sampler.start()
    sim.run(until=12 * HOUR)
    system.finalize()

    assert job.finished
    assert system.bus.counts[kinds.JOB_COMPLETED] == 1
    assert system.bus.counts[kinds.HOST_LOST] >= 1
    assert system.bus.counts[kinds.STALE_EXECUTION_REAPED] == 1
    assert system.schedulers[hosting[0]].hosted is None
    # The zombie's revoked slice was written off against the rolled-back
    # checkpoint credit: the books closed (no refund left pending) and
    # the identity holds.
    assert job.waste_refund_pending == 0.0
    assert job.wasted_cpu_seconds > 0.0
    useful = job.remote_cpu_seconds - job.wasted_cpu_seconds
    assert useful == pytest.approx(job.demand_seconds, abs=1.0)
    InvariantChecker(system).check_final()
