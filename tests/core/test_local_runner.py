"""Tests for the local-only execution baseline."""

import pytest

from repro.core import Job, LocalRunner
from repro.machine import TraceOwner, Workstation
from repro.sim import HOUR, Simulation


def make_runner(sim, owner_intervals=()):
    station = Workstation(
        sim, "ws-1",
        owner_model=TraceOwner(owner_intervals) if owner_intervals else None,
    )
    station.start()
    return LocalRunner(sim, station), station


def test_job_runs_locally_to_completion():
    sim = Simulation()
    runner, station = make_runner(sim)
    job = Job(user="u", home="ws-1", demand_seconds=HOUR, syscall_rate=0.0)
    runner.submit(job)
    sim.run(until=2 * HOUR)
    assert job.finished
    assert job.completed_at == pytest.approx(HOUR)
    assert station.ledger.totals["local_job"] == pytest.approx(HOUR)


def test_local_syscalls_inflate_runtime_slightly():
    sim = Simulation()
    runner, _station = make_runner(sim)
    # 100 calls/s at 0.5 ms each -> 5% overhead.
    job = Job(user="u", home="ws-1", demand_seconds=HOUR, syscall_rate=100.0)
    runner.submit(job)
    sim.run(until=2 * HOUR)
    assert job.completed_at == pytest.approx(1.05 * HOUR, rel=1e-6)


def test_owner_activity_pauses_job_without_loss():
    sim = Simulation()
    runner, _station = make_runner(
        sim, owner_intervals=[(600.0, 1800.0)]   # 20-minute interruption
    )
    job = Job(user="u", home="ws-1", demand_seconds=HOUR, syscall_rate=0.0)
    runner.submit(job)
    sim.run(until=3 * HOUR)
    assert job.finished
    # 1 h of work + 20 min of owner time.
    assert job.completed_at == pytest.approx(HOUR + 1200.0)
    assert job.wasted_cpu_seconds == 0.0


def test_jobs_run_serially_in_order():
    sim = Simulation()
    runner, _station = make_runner(sim)
    first = Job(user="u", home="ws-1", demand_seconds=600.0, syscall_rate=0.0)
    second = Job(user="u", home="ws-1", demand_seconds=600.0,
                 syscall_rate=0.0)
    runner.submit(first)
    runner.submit(second)
    sim.run(until=HOUR)
    assert first.completed_at == pytest.approx(600.0)
    assert second.completed_at == pytest.approx(1200.0)
    assert runner.completed == [first, second]


def test_submit_while_owner_active_waits():
    sim = Simulation()
    runner, _station = make_runner(sim, owner_intervals=[(0.0, 1000.0)])
    sim.run(until=10.0)   # owner already at the keyboard
    job = Job(user="u", home="ws-1", demand_seconds=600.0, syscall_rate=0.0)
    runner.submit(job)
    sim.run(until=100.0)
    assert not job.finished
    assert runner.queue_length == 1
    sim.run(until=3000.0)
    assert job.finished
    assert job.completed_at == pytest.approx(1600.0)


def test_queue_length_counts_running_job():
    sim = Simulation()
    runner, _station = make_runner(sim)
    runner.submit(Job(user="u", home="ws-1", demand_seconds=HOUR))
    sim.run(until=60.0)
    assert runner.queue_length == 1
