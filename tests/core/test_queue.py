"""Tests for the per-station background job queue."""

import pytest

from repro.core import FIFO, SHORTEST_FIRST, BackgroundJobQueue, Job
from repro.core import job as jobstate
from repro.sim import SimulationError


def make_job(demand=3600.0):
    return Job(user="A", home="ws-1", demand_seconds=demand)


def test_unknown_discipline_rejected():
    with pytest.raises(SimulationError):
        BackgroundJobQueue("ws-1", discipline="lifo")


def test_fifo_order():
    queue = BackgroundJobQueue("ws-1", FIFO)
    jobs = [make_job() for _ in range(3)]
    for job in jobs:
        queue.enqueue(job)
    assert [queue.select_next() for _ in range(3)] == jobs


def test_shortest_first_order():
    queue = BackgroundJobQueue("ws-1", SHORTEST_FIRST)
    long_job = make_job(demand=7200.0)
    short_job = make_job(demand=600.0)
    queue.enqueue(long_job)
    queue.enqueue(short_job)
    assert queue.select_next() is short_job


def test_select_from_empty_returns_none():
    assert BackgroundJobQueue("ws-1").select_next() is None


def test_enqueue_requires_pending_state():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    job.transition(jobstate.PLACING)
    with pytest.raises(SimulationError):
        queue.enqueue(job)


def test_double_enqueue_rejected():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    queue.enqueue(job)
    with pytest.raises(SimulationError):
        queue.enqueue(job)


def test_counts_track_lifecycle():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    queue.enqueue(job)
    assert (queue.pending_count, queue.active_count) == (1, 0)
    assert queue.total_in_system == 1

    picked = queue.select_next()
    queue.mark_active(picked)
    assert (queue.pending_count, queue.active_count) == (0, 1)
    assert queue.total_in_system == 1

    picked.transition(jobstate.PLACING)
    picked.transition(jobstate.PENDING)
    queue.return_to_pending(picked)
    assert (queue.pending_count, queue.active_count) == (1, 0)


def test_retire_from_active():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    queue.enqueue(job)
    queue.select_next()
    queue.mark_active(job)
    queue.retire(job)
    assert queue.total_in_system == 0


def test_retire_from_pending():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    queue.enqueue(job)
    queue.retire(job)
    assert queue.total_in_system == 0


def test_retire_unknown_rejected():
    queue = BackgroundJobQueue("ws-1")
    with pytest.raises(SimulationError):
        queue.retire(make_job())


def test_double_mark_active_rejected():
    queue = BackgroundJobQueue("ws-1")
    job = make_job()
    queue.enqueue(job)
    queue.select_next()
    queue.mark_active(job)
    with pytest.raises(SimulationError):
        queue.mark_active(job)


def test_wants_capacity_reflects_pending_only():
    queue = BackgroundJobQueue("ws-1")
    assert not queue.wants_capacity
    job = make_job()
    queue.enqueue(job)
    assert queue.wants_capacity
    queue.select_next()
    queue.mark_active(job)
    assert not queue.wants_capacity
