"""End-to-end scheduler scenarios on small deterministic clusters.

These tests drive complete CondorSystem instances with scripted owner
activity (TraceOwner) so every placement, suspension, checkpoint and
preemption happens at a predictable simulated time.
"""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    StationSpec,
    SubmissionRefused,
    events,
)
from repro.machine import AlwaysActiveOwner, NeverActiveOwner, TraceOwner
from repro.sim import HOUR, MINUTE, Simulation

FOREVER = 10_000_000.0


def build_system(sim, host_specs, config=None, home_disk_mb=None):
    """A cluster with one always-busy home station plus the given hosts."""
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=home_disk_mb)]
    specs.extend(host_specs)
    return CondorSystem(sim, specs, config=config, coordinator_host="home")


def idle_host(name):
    return StationSpec(name, owner_model=NeverActiveOwner())


def submit_job(system, demand, user="A", **kwargs):
    job = Job(user=user, home="home", demand_seconds=demand, **kwargs)
    system.submit(job)
    return job


class TestBasicPlacement:
    def test_job_placed_and_completed_on_idle_host(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=2000.0)

        assert job.finished
        assert job.placements == ["host-1"]
        assert job.checkpoint_count == 0
        assert job.remote_cpu_seconds == pytest.approx(600.0, abs=1.0)
        # Placement begins on the first coordinator cycle (2 minutes in).
        assert job.first_placed_at == pytest.approx(120.0, abs=5.0)
        assert job.completed_at == pytest.approx(720.0, abs=10.0)

    def test_placement_support_charged_to_home(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=2000.0)

        # 0.5 MB image at 5 s/MB -> 2.5 s of placement support.
        assert job.support_seconds["placement"] == pytest.approx(2.5, rel=0.1)
        assert job.support_seconds["checkpoint"] == 0.0
        # Default syscall rate 0.5/s at 10 ms each over 600 s -> 3 s.
        assert job.support_seconds["syscall"] == pytest.approx(3.0, abs=0.1)
        home_ledger = system.station("home").ledger
        assert home_ledger.totals["placement"] == pytest.approx(2.5, rel=0.1)
        assert home_ledger.totals["syscall"] == pytest.approx(3.0, abs=0.1)

    def test_leverage_of_clean_run(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=2000.0)
        # 600 remote seconds for ~5.5 s of support.
        assert job.leverage() == pytest.approx(600.0 / 5.5, rel=0.05)

    def test_remote_host_books_remote_job_time(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        submit_job(system, demand=600.0)
        system.run(until=2000.0)
        host_ledger = system.station("host-1").ledger
        assert host_ledger.totals["remote_job"] == pytest.approx(600.0, abs=1.0)

    def test_bus_events_for_clean_run(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        submit_job(system, demand=600.0)
        system.run(until=2000.0)
        counts = system.bus.counts
        assert counts[events.JOB_SUBMITTED] == 1
        assert counts[events.JOB_PLACED] == 1
        assert counts[events.JOB_COMPLETED] == 1
        assert counts[events.JOB_VACATED] == 0


class TestOwnerReturns:
    def owner_trace_host(self, arrive, leave=FOREVER):
        return StationSpec(
            "host-1", owner_model=TraceOwner([(arrive, leave)])
        )

    def test_short_owner_visit_suspends_and_resumes(self):
        sim = Simulation()
        # Owner pops in for 2 minutes — within the 5-minute grace.
        system = build_system(sim, [self.owner_trace_host(300.0, 420.0)])
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=3000.0)

        assert job.finished
        assert job.checkpoint_count == 0          # never moved
        assert job.placements == ["host-1"]
        assert system.bus.counts[events.JOB_SUSPENDED] == 1
        assert system.bus.counts[events.JOB_RESUMED] == 1
        # The visit added ~120 s of dead time to the turnaround.
        assert job.completed_at == pytest.approx(840.0, abs=10.0)

    def test_long_owner_visit_checkpoints_job_away(self):
        sim = Simulation()
        system = build_system(
            sim, [self.owner_trace_host(300.0), idle_host("host-2")]
        )
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=3000.0)

        assert job.finished
        assert job.checkpoint_count == 1
        assert job.placements == ["host-1", "host-2"]
        # No work is redone: remote CPU equals the demand.
        assert job.remote_cpu_seconds == pytest.approx(600.0, abs=1.0)
        assert job.wasted_cpu_seconds == 0.0
        assert job.support_seconds["checkpoint"] > 0.0
        assert system.bus.counts[events.JOB_VACATED] == 1

    def test_vacate_happens_after_grace_period(self):
        sim = Simulation()
        system = build_system(
            sim, [self.owner_trace_host(300.0), idle_host("host-2")]
        )
        system.start()
        job = submit_job(system, demand=600.0)
        vacate_times = []
        system.bus.subscribe(
            events.JOB_VACATED,
            lambda job, host, reason: vacate_times.append(sim.now),
        )
        system.run(until=3000.0)
        # Owner at 300, grace 5 min -> vacate completes shortly after 600.
        assert vacate_times[0] == pytest.approx(600.0, abs=5.0)

    def test_host_cpu_returned_to_owner_immediately(self):
        sim = Simulation()
        system = build_system(sim, [self.owner_trace_host(300.0, 400.0)])
        system.start()
        submit_job(system, demand=600.0)
        system.run(until=3000.0)
        host = system.station("host-1")
        # While the owner was present the job accrued nothing: total
        # remote_job time == demand even though the owner interleaved.
        assert host.ledger.totals["remote_job"] == pytest.approx(600.0, abs=1.0)
        assert host.ledger.totals["owner"] == pytest.approx(100.0, abs=1.0)


class TestButlerMode:
    def test_kill_loses_work(self):
        sim = Simulation()
        config = CondorConfig(kill_on_owner_return=True)
        system = build_system(
            sim,
            [StationSpec("host-1", owner_model=TraceOwner([(300.0, FOREVER)])),
             idle_host("host-2")],
            config=config,
        )
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=3000.0)

        assert job.finished
        assert job.kill_count == 1
        assert job.checkpoint_count == 0
        # ~180 s of work at host-1 was thrown away and redone at host-2.
        assert job.wasted_cpu_seconds == pytest.approx(180.0, abs=10.0)
        assert job.remote_cpu_seconds == pytest.approx(780.0, abs=15.0)
        assert system.bus.counts[events.JOB_KILLED] == 1


class TestPeriodicCheckpointing:
    def test_periodic_checkpoints_bound_the_loss(self):
        sim = Simulation()
        config = CondorConfig(kill_on_owner_return=True,
                              periodic_checkpoint_interval=60.0)
        system = build_system(
            sim,
            [StationSpec("host-1", owner_model=TraceOwner([(300.0, FOREVER)])),
             idle_host("host-2")],
            config=config,
        )
        system.start()
        job = submit_job(system, demand=600.0)
        system.run(until=3000.0)

        assert job.finished
        assert job.periodic_checkpoint_count >= 2
        # Work lost at the kill is at most one checkpoint interval.
        assert job.wasted_cpu_seconds <= 60.0 + 5.0
        assert system.bus.counts[events.JOB_PERIODIC_CHECKPOINT] >= 2


class TestUpDownPreemption:
    def test_light_user_preempts_heavy_hoarder(self):
        sim = Simulation()
        specs = [
            StationSpec("home", owner_model=AlwaysActiveOwner()),
            StationSpec("light", owner_model=AlwaysActiveOwner()),
            idle_host("host-1"),
        ]
        system = CondorSystem(sim, specs, coordinator_host="home")
        system.start()
        heavy_jobs = [submit_job(system, demand=10 * HOUR, user="A")
                      for _ in range(2)]
        sim.run(until=1000.0)

        light_job = Job(user="B", home="light", demand_seconds=300.0)
        system.submit(light_job)
        sim.run(until=4000.0)

        assert light_job.finished
        preempted = [j for j in heavy_jobs if j.priority_preemptions > 0]
        assert len(preempted) == 1
        assert system.bus.counts[events.JOB_PREEMPTED] == 1
        # The light job waited only a few coordinator cycles.
        assert light_job.wait_ratio() < 3.0

    def test_no_preemption_when_idle_capacity_exists(self):
        sim = Simulation()
        specs = [
            StationSpec("home", owner_model=AlwaysActiveOwner()),
            StationSpec("light", owner_model=AlwaysActiveOwner()),
            idle_host("host-1"),
            idle_host("host-2"),
        ]
        system = CondorSystem(sim, specs, coordinator_host="home")
        system.start()
        submit_job(system, demand=10 * HOUR, user="A")
        sim.run(until=1000.0)
        light_job = Job(user="B", home="light", demand_seconds=300.0)
        system.submit(light_job)
        sim.run(until=4000.0)

        assert light_job.finished
        assert system.bus.counts[events.JOB_PREEMPTED] == 0


class TestPlacementThrottle:
    def test_one_placement_per_cycle(self):
        sim = Simulation()
        system = build_system(
            sim, [idle_host(f"host-{i}") for i in range(1, 4)]
        )
        system.start()
        jobs = [submit_job(system, demand=2 * HOUR) for _ in range(3)]
        sim.run(until=150.0)
        assert sum(1 for j in jobs if j.placements) == 1
        sim.run(until=270.0)
        assert sum(1 for j in jobs if j.placements) == 2
        sim.run(until=390.0)
        assert sum(1 for j in jobs if j.placements) == 3

    def test_unthrottled_config_fills_pool_in_one_cycle(self):
        sim = Simulation()
        config = CondorConfig(placements_per_cycle=100,
                              grants_per_station_per_cycle=100)
        system = build_system(
            sim, [idle_host(f"host-{i}") for i in range(1, 4)], config=config
        )
        system.start()
        jobs = [submit_job(system, demand=2 * HOUR) for _ in range(3)]
        sim.run(until=150.0)
        assert sum(1 for j in jobs if j.placements) == 3


class TestDiskPressure:
    def test_submission_refused_when_disk_full(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")], home_disk_mb=1.2)
        system.start()
        submit_job(system, demand=HOUR)       # 0.5 MB fits
        submit_job(system, demand=HOUR)       # 1.0 MB total fits
        with pytest.raises(SubmissionRefused):
            submit_job(system, demand=HOUR)   # 1.5 MB does not
        assert system.bus.counts[events.JOB_REFUSED] == 1

    def test_grant_ignored_when_no_job_fits_host_disk(self):
        sim = Simulation()
        system = build_system(
            sim,
            [StationSpec("host-1", owner_model=NeverActiveOwner(),
                         disk_mb=0.2)],
        )
        system.start()
        job = submit_job(system, demand=HOUR)
        system.run(until=1000.0)
        assert not job.placements
        assert job.state == "pending"


class TestHostFailure:
    def test_host_crash_restarts_job_elsewhere(self):
        sim = Simulation()
        system = build_system(
            sim, [idle_host("host-1"), idle_host("host-2")]
        )
        system.start()
        job = submit_job(system, demand=600.0)
        sim.run(until=300.0)
        assert job.placements == ["host-1"]
        system.scheduler("host-1").crash()
        sim.run(until=3000.0)

        assert job.finished
        assert job.placements == ["host-1", "host-2"]
        # No checkpoint existed beyond the submit image: progress redone.
        assert job.wasted_cpu_seconds == pytest.approx(180.0, abs=15.0)
        assert system.bus.counts[events.HOST_LOST] == 1

    def test_crashed_host_refuses_placements(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        system.scheduler("host-1").crash()
        job = submit_job(system, demand=600.0)
        sim.run(until=1500.0)
        assert not job.finished
        system.scheduler("host-1").recover()
        sim.run(until=4000.0)
        assert job.finished


class TestCoordinatorFailure:
    def test_coordinator_crash_stops_new_allocations_only(self):
        sim = Simulation()
        system = build_system(
            sim, [idle_host("host-1"), idle_host("host-2")]
        )
        system.start()
        running = submit_job(system, demand=2 * HOUR)
        sim.run(until=300.0)
        assert running.placements == ["host-1"]

        system.coordinator.crash()
        stranded = submit_job(system, demand=600.0)
        sim.run(until=3000.0)
        assert not stranded.placements          # no allocation happened
        assert running.state == "running"       # but execution continued

        system.coordinator.recover_at(system.station("host-2"))
        sim.run(until=12 * HOUR)
        assert stranded.finished
        assert running.finished


class TestQueueLengthAccounting:
    def test_queue_counts_pending_and_in_service(self):
        sim = Simulation()
        system = build_system(sim, [idle_host("host-1")])
        system.start()
        submit_job(system, demand=2 * HOUR, user="A")
        submit_job(system, demand=2 * HOUR, user="A")
        light = Job(user="B", home="home", demand_seconds=HOUR)
        system.submit(light)
        sim.run(until=300.0)
        assert system.queue_length() == 3
        assert system.queue_length(users={"B"}) == 1
        sim.run(until=40 * HOUR)
        assert system.queue_length() == 0
