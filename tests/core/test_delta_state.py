"""Delta-state protocol tests: the view, quarantine, and failure modes.

The delta coordinator must preserve polling's two failure guarantees —
lost-host detection and reboot-epoch detection — while adding its own:
stale pushed updates can never roll the view backward or resurrect a
station declared unreachable.
"""

import pytest

from repro.core import (
    CondorConfig,
    CondorSystem,
    Job,
    StationSpec,
    events,
)
from repro.core.cluster_view import ClusterView
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import HOUR, Simulation, SimulationError


def build(sim, n_hosts, config=None):
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner())]
    specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
              for i in range(n_hosts)]
    return CondorSystem(sim, specs, config=config, coordinator_host="home")


def submit(system, n=1, demand=10 * HOUR):
    jobs = []
    for _ in range(n):
        job = Job(user="A", home="home", demand_seconds=demand)
        system.submit(job)
        jobs.append(job)
    return jobs


def state(idle=True, hosting=None, pending=0, epoch=0, free=100.0):
    return {
        "idle": idle, "hosting_home": hosting, "pending": pending,
        "free_mb": free, "mean_idle": None, "idle_since": 0.0,
        "boot_epoch": epoch, "arch": "vax", "pending_gangs": [],
    }


class TestClusterView:
    def test_requires_stations(self):
        with pytest.raises(SimulationError):
            ClusterView([])

    def test_rejects_unknown_station(self):
        view = ClusterView(["a"])
        with pytest.raises(SimulationError):
            view.apply("b", state())

    def test_idle_list_in_registration_order(self):
        view = ClusterView(["c", "a", "b"])
        for name in ("b", "c", "a"):
            view.apply(name, state())
        assert view.idle_hosts() == ["c", "a", "b"]
        view.apply("c", state(idle=False), seq=2)
        assert view.idle_hosts() == ["a", "b"]

    def test_stale_seq_rejected(self):
        view = ClusterView(["a"])
        assert view.apply("a", state(pending=3), seq=5)
        assert not view.apply("a", state(pending=0), seq=4)
        assert view.states["a"]["pending"] == 3
        assert view.wanting == {"a"}

    def test_held_counts_and_hosting_tracked(self):
        view = ClusterView(["a", "b", "c"])
        view.apply("a", state(hosting="c", idle=False), seq=1)
        view.apply("b", state(hosting="c", idle=False), seq=1)
        assert view.held_counts == {"c": 2}
        assert view.hosting == {"a": "c", "b": "c"}
        view.apply("a", state(), seq=2)
        assert view.held_counts == {"c": 1}
        assert view.hosting == {"b": "c"}

    def test_quarantine_drops_derived_state(self):
        view = ClusterView(["a"])
        view.apply("a", state(pending=2), seq=1)
        view.quarantine("a")
        assert view.wanting == set()
        assert view.idle_hosts() == []
        # ...but the last-known state is retained for seq/epoch gating.
        assert view.known("a")

    def test_reply_readmits_quarantined(self):
        view = ClusterView(["a"])
        view.apply("a", state(), seq=1)
        view.quarantine("a")
        assert view.apply("a", state(), seq=2, from_reply=True)
        assert "a" not in view.quarantined
        assert view.idle_hosts() == ["a"]

    def test_push_with_same_epoch_cannot_readmit(self):
        view = ClusterView(["a"])
        view.apply("a", state(epoch=0), seq=1)
        view.quarantine("a")
        assert not view.apply("a", state(epoch=0), seq=2)
        assert "a" in view.quarantined
        assert view.idle_hosts() == []

    def test_push_with_newer_epoch_readmits(self):
        view = ClusterView(["a"])
        view.apply("a", state(epoch=0), seq=1)
        view.quarantine("a")
        assert view.apply("a", state(epoch=1), seq=2)
        assert "a" not in view.quarantined
        assert view.idle_hosts() == ["a"]

    def test_reset_forgets_everything(self):
        view = ClusterView(["a", "b"])
        view.apply("a", state(hosting="b", idle=False), seq=3)
        view.quarantine("b")
        view.reset()
        assert not view.known("a")
        assert view.seqs == {}
        assert view.quarantined == set()
        assert view.unknown_stations() == ["a", "b"]


class TestDeltaLostHost:
    def test_dead_host_detected_and_quarantined(self):
        sim = Simulation()
        system = build(sim, 1)
        system.start()
        job = submit(system, 1, demand=5 * HOUR)[0]
        sim.run(until=600.0)
        assert job.state == "running"
        system.scheduler("h0").crash()
        sim.run(until=1200.0)
        assert job.state == "pending"
        assert system.bus.counts[events.HOST_LOST] == 1
        assert "h0" in system.coordinator.view.quarantined

    def test_lost_notice_sent_once_while_dead(self):
        sim = Simulation()
        system = build(sim, 1)
        system.start()
        submit(system, 1, demand=100 * HOUR)
        sim.run(until=600.0)
        system.scheduler("h0").crash()
        sim.run(until=3000.0)
        assert system.bus.counts[events.HOST_LOST] == 1

    def test_crash_and_reboot_between_anti_entropy_polls(self):
        # The whole outage fits between two anti-entropy polls (interval
        # stretched to make sure no full poll lands inside it); the
        # bumped boot epoch — seen either on the pushed announcement or
        # on the hosting host's per-cycle probe — must still be read as
        # "the job died with the old incarnation", exactly once.
        sim = Simulation()
        config = CondorConfig(anti_entropy_interval=1000)
        system = build(sim, 1, config=config)
        system.start()
        job = submit(system, 1, demand=100 * HOUR)[0]
        sim.run(until=600.0)
        assert job.state == "running"
        host = system.scheduler("h0")
        host.crash()
        sim.schedule(30.0, host.recover)   # back up within one cycle
        sim.run(until=1500.0)
        assert system.bus.counts[events.HOST_LOST] == 1
        assert job.state in ("pending", "placing", "running")
        # The rebooted host is back in rotation: the job lands again.
        sim.run(until=3 * HOUR)
        assert job.state == "running"
        assert system.coordinator.view.quarantined == set()

    def test_recovered_host_readmitted_by_probe(self):
        sim = Simulation()
        system = build(sim, 1)
        system.start()
        job = submit(system, 1, demand=100 * HOUR)[0]
        sim.run(until=600.0)
        system.scheduler("h0").crash()
        sim.run(until=1200.0)
        assert "h0" in system.coordinator.view.quarantined
        system.scheduler("h0").recover()
        sim.run(until=2 * HOUR)
        assert "h0" not in system.coordinator.view.quarantined
        assert job.state == "running"


class TestStaleUpdateAfterUnreachable:
    def test_stale_push_cannot_resurrect_dead_host(self):
        # A state_update that left the host before it died (or was
        # delayed in flight) arrives *after* the coordinator declared the
        # host unreachable.  Same boot epoch ⇒ it must be discarded: the
        # host stays quarantined and receives no grants.
        sim = Simulation()
        system = build(sim, 1)
        system.start()
        submit(system, 2, demand=100 * HOUR)
        sim.run(until=600.0)
        coordinator = system.coordinator
        dead = system.scheduler("h0")
        ghost = {**dead._observable_state(), "hosting_home": None,
                 "idle": True}
        ghost_seq = dead._push_seq + 1
        dead.crash()
        sim.run(until=1200.0)
        assert "h0" in coordinator.view.quarantined
        # The delayed pre-crash push finally arrives.
        coordinator._handle_state_update(
            {"station": "h0", "state": ghost, "seq": ghost_seq})
        assert "h0" in coordinator.view.quarantined
        assert coordinator.view.idle_hosts() == []
        grants_before = coordinator.grants_issued
        sim.run(until=3000.0)
        assert coordinator.grants_issued == grants_before
        assert system.bus.counts[events.HOST_LOST] == 1


class TestAntiEntropyRepair:
    def test_lost_push_repaired_and_reported(self):
        # Swallow the home station's "I have a pending job" push: the
        # view goes stale (the coordinator sees nothing to grant) until
        # the next anti-entropy poll, whose reply carries the newer seq —
        # and that repair is telemetered.
        sim = Simulation()
        config = CondorConfig(anti_entropy_interval=3)
        system = build(sim, 2, config=config)
        system.start()
        sim.run(until=130.0)    # cycle 1 done, initial states absorbed
        coordinator = system.coordinator
        assert coordinator.view.known("home")
        net = system.network
        real_rpc = net.rpc
        swallowed = []

        # Pushes travel as acknowledged RPCs now; swallowing the RPC
        # wholesale (no ack, no timeout event) models a push whose loss
        # the sender never detects — the worst case anti-entropy exists
        # to repair.
        def lossy_rpc(dst, op, payload=None, **kwargs):
            if op == "state_update" and payload["station"] == "home":
                swallowed.append(payload)
                return None
            return real_rpc(dst, op, payload, **kwargs)

        net.rpc = lossy_rpc
        try:
            job = submit(system, 1, demand=50 * HOUR)[0]
            # Cycle 2 (t=240) sees a stale view: no grant possible.
            sim.run(until=350.0)
        finally:
            net.rpc = real_rpc
        assert len(swallowed) == 1
        assert coordinator.grants_issued == 0
        assert job.state == "pending"
        # Cycle 3 (t=360) is the anti-entropy poll: the reply's seq is
        # ahead of the last applied push, the drift is repaired, and the
        # job is finally granted a machine.
        sim.run(until=600.0)
        repairs = system.bus.counts.get(events.COORDINATOR_VIEW_REPAIR, 0)
        assert repairs >= 1
        assert coordinator.grants_issued >= 1
        assert job.state == "running"
