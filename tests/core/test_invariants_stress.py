"""Randomized stress tests: invariants hold under chaos.

These runs combine random owner activity, random workloads, crash
injection and both scheduler modes, sampling the invariant checker
throughout.  They are the repository's strongest correctness evidence:
the paper's guarantees hold not just on curated scenarios but across
arbitrary interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CondorConfig,
    CondorSystem,
    CrashInjector,
    InvariantChecker,
    Job,
    StationSpec,
)
from repro.machine import AlternatingOwner, AlwaysActiveOwner
from repro.metrics.timeseries import PeriodicSampler
from repro.sim import DAY, HOUR, MINUTE, RandomStream, Simulation
from repro.sim.randomness import Exponential, LogNormal, Uniform


def build_chaos_system(seed, stations=6, config=None):
    sim = Simulation()
    stream = RandomStream(seed, "chaos")
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0)]
    for i in range(stations):
        specs.append(StationSpec(
            f"h{i}",
            owner_model=AlternatingOwner(
                Exponential(2 * HOUR), LogNormal(30 * MINUTE, 1.0),
                stream.fork(f"h{i}.owner"),
            ),
        ))
    system = CondorSystem(sim, specs, config=config,
                          coordinator_host="home")
    return sim, system, stream


def submit_random_workload(system, stream, n_jobs):
    jobs = []
    demand = Uniform(10 * MINUTE, 6 * HOUR)
    for i in range(n_jobs):
        job = Job(user=f"user-{i % 3}", home="home",
                  demand_seconds=demand.sample(stream),
                  syscall_rate=stream.uniform(0.0, 1.0))
        system.submit(job)
        jobs.append(job)
    return jobs


def run_with_invariant_sampling(sim, system, horizon):
    checker = InvariantChecker(system)
    sampler = PeriodicSampler(sim, checker.check, interval=10 * MINUTE,
                              name="invariants")
    system.start()
    sampler.start()
    sim.run(until=horizon)
    system.finalize()
    checker.check_final()
    return checker


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_invariants_hold_with_churny_owners(seed):
    sim, system, stream = build_chaos_system(seed)
    jobs = submit_random_workload(system, stream.fork("jobs"), 12)
    checker = run_with_invariant_sampling(sim, system, 6 * DAY)
    assert checker.checks_passed > 500
    assert all(job.finished for job in jobs)
    # Checkpointing guarantee: nothing was ever redone.
    assert all(job.wasted_cpu_seconds == 0.0 for job in jobs)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_invariants_hold_under_crash_injection(seed):
    sim, system, stream = build_chaos_system(seed)
    jobs = submit_random_workload(system, stream.fork("jobs"), 10)
    injector = CrashInjector(
        sim, system, stream.fork("faults"),
        uptime_dist=Exponential(8 * HOUR),
        downtime_dist=Exponential(30 * MINUTE),
        exclude=("home",),
    )
    injector.start()
    checker = run_with_invariant_sampling(sim, system, 8 * DAY)
    assert injector.crashes > 0
    # The paper's guarantee: jobs eventually complete despite failures.
    assert all(job.finished for job in jobs)
    assert checker.checks_passed > 500


@pytest.mark.parametrize("seed", [21, 22])
def test_invariants_hold_in_butler_mode_with_crashes(seed):
    config = CondorConfig(kill_on_owner_return=True)
    sim, system, stream = build_chaos_system(seed, config=config)
    jobs = submit_random_workload(system, stream.fork("jobs"), 8)
    injector = CrashInjector(
        sim, system, stream.fork("faults"),
        uptime_dist=Exponential(12 * HOUR),
        downtime_dist=Exponential(20 * MINUTE),
        exclude=("home",),
    )
    injector.start()
    run_with_invariant_sampling(sim, system, 10 * DAY)
    finished = [job for job in jobs if job.finished]
    # Kill-mode wastes work (that's its point) but never corrupts it.
    for job in finished:
        useful = job.remote_cpu_seconds - job.wasted_cpu_seconds
        assert useful == pytest.approx(job.demand_seconds, abs=1.0)


@pytest.mark.parametrize("seed", [31, 32])
def test_invariants_with_periodic_checkpoints_and_crashes(seed):
    config = CondorConfig(periodic_checkpoint_interval=15 * MINUTE)
    sim, system, stream = build_chaos_system(seed, config=config)
    jobs = submit_random_workload(system, stream.fork("jobs"), 8)
    injector = CrashInjector(
        sim, system, stream.fork("faults"),
        uptime_dist=Exponential(6 * HOUR),
        downtime_dist=Exponential(30 * MINUTE),
        exclude=("home",),
    )
    injector.start()
    run_with_invariant_sampling(sim, system, 8 * DAY)
    finished = [job for job in jobs if job.finished]
    assert finished
    # With 15-minute periodic checkpoints, each crash loses at most
    # ~one interval of work.
    for job in finished:
        max_loss = (job.kill_count + len(job.placements)) * (15 * MINUTE)
        assert job.wasted_cpu_seconds <= max_loss + 1.0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_invariants_property_short_chaos(seed):
    """Hypothesis sweep: short chaotic runs across arbitrary seeds."""
    sim, system, stream = build_chaos_system(seed, stations=4)
    submit_random_workload(system, stream.fork("jobs"), 6)
    checker = run_with_invariant_sampling(sim, system, 1 * DAY)
    assert checker.checks_passed > 100


@pytest.mark.parametrize("seed", [41, 42, 43])
def test_invariants_hold_with_message_jitter(seed):
    """Messages between daemons arrive out of order (jittered latency);
    the protocols must tolerate the reordering."""
    from repro.net import Network

    sim = Simulation()
    stream = RandomStream(seed, "jitter-chaos")
    network = Network(
        sim, latency=0.005, latency_jitter=2.0,
        jitter_stream=stream.fork("net"),
    )
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=500.0)]
    for i in range(5):
        specs.append(StationSpec(
            f"h{i}",
            owner_model=AlternatingOwner(
                Exponential(90 * MINUTE), LogNormal(20 * MINUTE, 1.0),
                stream.fork(f"h{i}.owner"),
            ),
        ))
    system = CondorSystem(sim, specs, network=network,
                          coordinator_host="home")
    jobs = submit_random_workload(system, stream.fork("jobs"), 10)
    injector = CrashInjector(
        sim, system, stream.fork("faults"),
        uptime_dist=Exponential(10 * HOUR),
        downtime_dist=Exponential(30 * MINUTE),
        exclude=("home",),
    )
    injector.start()
    checker = run_with_invariant_sampling(sim, system, 6 * DAY)
    assert checker.checks_passed > 400
    assert all(job.finished for job in jobs)
