"""Tests for dependent-job (DAG) submission."""

import pytest

from repro.core import CondorSystem, Job, JobDag, SchedulingError, StationSpec
from repro.machine import AlwaysActiveOwner, NeverActiveOwner
from repro.sim import DAY, HOUR, Simulation


def build(pool=2):
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner(),
                         disk_mb=None)]
    specs += [StationSpec(f"h{i}", owner_model=NeverActiveOwner())
              for i in range(pool)]
    system = CondorSystem(sim, specs, coordinator_host="home")
    system.start()
    return sim, system


def job(demand=HOUR, name=None):
    return Job(user="u", home="home", demand_seconds=demand, name=name)


def test_linear_chain_runs_in_order():
    sim, system = build()
    dag = JobDag(system)
    a = dag.add(job(name="a"))
    b = dag.add(job(name="b"), after=[a])
    c = dag.add(job(name="c"), after=[b])
    dag.start()
    sim.run(until=DAY)
    assert dag.done
    assert a.completed_at <= b.submitted_at
    assert b.completed_at <= c.submitted_at


def test_parallel_stage_overlaps():
    sim, system = build(pool=3)
    dag = JobDag(system)
    gen = dag.add(job(demand=30 * 60.0, name="generate"))
    sims = [dag.add(job(demand=2 * HOUR, name=f"sweep-{i}"), after=[gen])
            for i in range(3)]
    reduce_job = dag.add(job(demand=30 * 60.0, name="reduce"), after=sims)
    dag.start()
    sim.run(until=2 * DAY)
    assert dag.done
    # The three sweeps ran concurrently (window overlap).
    starts = [j.first_placed_at for j in sims]
    ends = [j.completed_at for j in sims]
    assert max(starts) < min(ends)
    assert reduce_job.submitted_at >= max(ends)


def test_diamond_dependencies():
    sim, system = build(pool=2)
    dag = JobDag(system)
    top = dag.add(job(name="top", demand=600.0))
    left = dag.add(job(name="left", demand=600.0), after=[top])
    right = dag.add(job(name="right", demand=1200.0), after=[top])
    bottom = dag.add(job(name="bottom", demand=600.0),
                     after=[left, right])
    dag.start()
    sim.run(until=DAY)
    assert dag.done
    assert bottom.submitted_at >= max(left.completed_at,
                                      right.completed_at)


def test_unblocked_jobs_submit_immediately():
    sim, system = build()
    dag = JobDag(system)
    a = dag.add(job(name="a"))
    b = dag.add(job(name="b"))
    dag.start()
    assert a.submitted_at is not None and b.submitted_at is not None
    assert dag.waiting_jobs() == []


def test_parent_must_be_added_first():
    sim, system = build()
    dag = JobDag(system)
    ghost = job(name="ghost")
    with pytest.raises(SchedulingError):
        dag.add(job(name="child"), after=[ghost])


def test_no_duplicate_jobs():
    sim, system = build()
    dag = JobDag(system)
    a = dag.add(job())
    with pytest.raises(SchedulingError):
        dag.add(a)


def test_no_additions_after_start():
    sim, system = build()
    dag = JobDag(system)
    dag.add(job())
    dag.start()
    with pytest.raises(SchedulingError):
        dag.add(job())


def test_critical_path_demand():
    sim, system = build()
    dag = JobDag(system)
    a = dag.add(job(demand=100.0))
    b = dag.add(job(demand=200.0), after=[a])
    c = dag.add(job(demand=50.0), after=[a])
    d = dag.add(job(demand=25.0), after=[b, c])
    dag.start()
    assert dag.critical_path_demand() == 325.0   # a -> b -> d


def test_makespan_bounded_below_by_critical_path():
    sim, system = build(pool=4)
    dag = JobDag(system)
    a = dag.add(job(demand=HOUR))
    for i in range(3):
        dag.add(job(demand=HOUR), after=[a])
    dag.start()
    sim.run(until=DAY)
    assert dag.done
    makespan = max(j.completed_at for j in dag.jobs)
    assert makespan >= dag.critical_path_demand()
