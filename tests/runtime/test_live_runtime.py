"""Tests for the live runtime: real threads, real checkpoints."""

import os
import threading
import time

import pytest

from repro.runtime import (
    COMPLETED,
    FAILED,
    InMemoryCheckpointStore,
    LiveCheckpointStore,
    LiveCluster,
    LiveJob,
    LiveRuntimeError,
    LiveWorker,
    SyntheticOwner,
)


def counting_job(target, step_sleep=0.0, checkpoint_every=10):
    """A restartable job counting to ``target`` with periodic checkpoints."""

    def fn(ctx, state):
        i = state or 0
        while i < target:
            i += 1
            if step_sleep:
                time.sleep(step_sleep)
            if i % checkpoint_every == 0:
                ctx.checkpoint(i)
        return i

    return fn


class TestCheckpointStores:
    @pytest.mark.parametrize("store_factory", [
        InMemoryCheckpointStore,
        lambda: LiveCheckpointStore(),
    ])
    def test_save_load_roundtrip(self, store_factory):
        store = store_factory()
        job = LiveJob(lambda ctx, s: None)
        store.save(job, {"step": 41, "data": [1, 2, 3]})
        assert store.load(job) == {"step": 41, "data": [1, 2, 3]}

    def test_load_missing_is_none(self):
        store = InMemoryCheckpointStore()
        assert store.load(LiveJob(lambda ctx, s: None)) is None

    def test_discard(self):
        store = InMemoryCheckpointStore()
        job = LiveJob(lambda ctx, s: None)
        store.save(job, 7)
        store.discard(job)
        assert store.load(job) is None

    def test_new_save_supersedes(self):
        store = InMemoryCheckpointStore()
        job = LiveJob(lambda ctx, s: None)
        store.save(job, 1)
        store.save(job, 2)
        assert store.load(job) == 2

    def test_unpicklable_state_rejected(self):
        store = InMemoryCheckpointStore()
        job = LiveJob(lambda ctx, s: None)
        with pytest.raises(LiveRuntimeError):
            store.save(job, threading.Lock())

    def test_file_store_atomic_and_sized(self, tmp_path):
        store = LiveCheckpointStore(root=tmp_path)
        job = LiveJob(lambda ctx, s: None)
        store.save(job, list(range(100)))
        assert store.size_bytes(job) > 0
        store.discard(job)
        assert store.size_bytes(job) == 0

    def test_state_isolation(self):
        # Mutating the loaded state must not affect the stored copy.
        store = InMemoryCheckpointStore()
        job = LiveJob(lambda ctx, s: None)
        store.save(job, [1, 2])
        loaded = store.load(job)
        loaded.append(3)
        assert store.load(job) == [1, 2]


class TestLiveWorker:
    def test_runs_job_to_completion(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        job = LiveJob(counting_job(100), name="count")
        exits = []
        assert worker.start_job(job, lambda j, o: exits.append(o))
        assert job.wait(timeout=5.0)
        assert job.status == COMPLETED
        assert job.result == 100
        assert exits == ["completed"]

    def test_refuses_second_job(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        slow = LiveJob(counting_job(10_000, step_sleep=0.001))
        assert worker.start_job(slow, lambda j, o: None)
        другой = LiveJob(counting_job(10))
        assert not worker.start_job(другой, lambda j, o: None)
        worker.owner_arrived()  # unwind the slow job
        slow_done = slow.wait(timeout=5.0)
        assert not slow_done or slow.finished

    def test_refuses_when_owner_active(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        worker.owner_arrived()
        assert not worker.start_job(LiveJob(counting_job(1)),
                                    lambda j, o: None)

    def test_owner_arrival_vacates_at_next_checkpoint(self):
        store = InMemoryCheckpointStore()
        worker = LiveWorker("w1", store)
        job = LiveJob(counting_job(1_000_000, step_sleep=0.0005,
                                   checkpoint_every=5))
        exits = []
        done = threading.Event()

        def on_exit(j, outcome):
            exits.append(outcome)
            done.set()

        worker.start_job(job, on_exit)
        time.sleep(0.05)
        worker.owner_arrived()
        assert done.wait(timeout=5.0)
        assert exits == ["vacated"]
        assert job.status == "pending"
        saved = store.load(job)
        assert saved is not None and saved > 0

    def test_failing_job_recorded(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())

        def boom(ctx, state):
            raise ValueError("job bug")

        job = LiveJob(boom)
        worker.start_job(job, lambda j, o: None)
        assert job.wait(timeout=5.0)
        assert job.status == FAILED
        assert isinstance(job.error, ValueError)

    def test_job_fn_must_be_callable(self):
        with pytest.raises(LiveRuntimeError):
            LiveJob("not-callable")


class TestLiveCluster:
    def test_single_job_completes(self):
        with LiveCluster(["w1"]) as cluster:
            job = cluster.submit(counting_job(500), owner="alice")
            assert cluster.wait_all(timeout=10.0)
        assert job.status == COMPLETED
        assert job.result == 500

    def test_many_jobs_across_workers(self):
        with LiveCluster(["w1", "w2", "w3"],
                         placements_per_cycle=3) as cluster:
            jobs = [cluster.submit(counting_job(300, step_sleep=0.0003),
                                   owner="alice")
                    for _ in range(9)]
            assert cluster.wait_all(timeout=20.0)
        assert all(job.result == 300 for job in jobs)
        used_workers = {name for job in jobs for name in job.placements}
        assert len(used_workers) >= 2

    def test_vacated_job_migrates_and_resumes(self):
        store = InMemoryCheckpointStore()
        with LiveCluster(["w1", "w2"], store=store,
                         poll_interval=0.01) as cluster:
            job = cluster.submit(
                counting_job(4000, step_sleep=0.0005, checkpoint_every=20),
                owner="alice",
            )
            # Wait until it runs on some worker, then reclaim that worker.
            deadline = time.monotonic() + 5.0
            first = None
            while time.monotonic() < deadline and first is None:
                for worker in cluster.workers.values():
                    if worker.current_job() is job:
                        first = worker
                time.sleep(0.005)
            assert first is not None
            first.owner_arrived()
            assert cluster.wait_all(timeout=30.0)
        assert job.result == 4000
        assert job.vacated_count >= 1
        assert len(job.placements) >= 2
        assert job.placements[0] == first.name
        assert job.placements[-1] != first.name  # resumed elsewhere

    def test_no_work_lost_on_migration(self):
        # The job records every step it executes; after a migration the
        # total re-executed steps are bounded by the checkpoint interval.
        executed = []
        lock = threading.Lock()

        def tracked(ctx, state):
            i = state or 0
            while i < 2000:
                i += 1
                with lock:
                    executed.append(i)
                if i % 50 == 0:
                    time.sleep(0.001)
                    ctx.checkpoint(i)
            return i

        store = InMemoryCheckpointStore()
        with LiveCluster(["w1", "w2"], store=store,
                         poll_interval=0.01) as cluster:
            job = cluster.submit(tracked, owner="alice")
            time.sleep(0.1)
            for worker in cluster.workers.values():
                if worker.current_job() is job:
                    worker.owner_arrived()
            assert cluster.wait_all(timeout=30.0)
        assert job.result == 2000
        duplicates = len(executed) - len(set(executed))
        assert duplicates <= 50   # at most one checkpoint interval redone

    def test_fairness_across_owners(self):
        # A heavy owner floods the queue; a light owner's single job must
        # not wait behind all of it (Up-Down at work in real threads).
        with LiveCluster(["w1"], poll_interval=0.005) as cluster:
            heavy = [cluster.submit(counting_job(150, step_sleep=0.0004),
                                    owner="heavy")
                     for _ in range(12)]
            time.sleep(0.15)
            light = cluster.submit(counting_job(150, step_sleep=0.0004),
                                   owner="light")
            assert cluster.wait_all(timeout=60.0)
        light_pos = sorted(j.completed_at for j in heavy + [light]).index(
            light.completed_at
        )
        assert light_pos < len(heavy)   # finished before the heavy tail

    def test_needs_workers(self):
        with pytest.raises(LiveRuntimeError):
            LiveCluster([])

    def test_queue_length(self):
        cluster = LiveCluster(["w1"])   # not started: nothing drains
        cluster.submit(counting_job(10), owner="a")
        cluster.submit(counting_job(10), owner="a")
        assert cluster.queue_length() == 2


class TestDurableCheckpointWrites:
    def test_fsync_file_before_rename_then_dir(self, tmp_path, monkeypatch):
        # Durability ordering: data fsync -> rename -> directory fsync.
        # Any other order can surface a zero-length or missing file
        # after power loss even though save() returned.
        store = LiveCheckpointStore(root=tmp_path)
        job = LiveJob(lambda ctx, s: None)
        calls = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            calls.append(("fsync", "dir" if os.fstat(fd).st_mode & 0o40000
                          else "file"))
            return real_fsync(fd)

        def spy_replace(src, dst):
            calls.append(("replace", "file"))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        store.save(job, {"step": 1})
        assert [c[0] for c in calls] == ["fsync", "replace", "fsync"]
        assert calls[0] == ("fsync", "file")
        assert calls[2] == ("fsync", "dir")

    def test_torn_write_leaves_previous_checkpoint(self, tmp_path):
        # A pickle that dies partway through the tmp file must neither
        # replace nor corrupt the previous good image.
        store = LiveCheckpointStore(root=tmp_path)
        job = LiveJob(lambda ctx, s: None)
        store.save(job, {"step": 41})

        class TearsMidPickle:
            def __reduce__(self):
                raise OSError("disk died mid-write")

        with pytest.raises(OSError):
            store.save(job, {"step": 42, "payload": TearsMidPickle()})
        assert store.load(job) == {"step": 41}
        # No half-written tmp litter left behind either.
        leftovers = [name for name in os.listdir(tmp_path)
                     if not name.endswith(".ckpt")]
        assert leftovers == []

    def test_truncated_tmp_never_promoted(self, tmp_path, monkeypatch):
        # Even if the crash happens *after* pickling but before the
        # rename (simulated by a failing fsync), the old image survives.
        store = LiveCheckpointStore(root=tmp_path)
        job = LiveJob(lambda ctx, s: None)
        store.save(job, {"step": 7})
        real_fsync = os.fsync

        def failing_fsync(fd):
            raise OSError("power cut at fsync")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            store.save(job, {"step": 8})
        monkeypatch.setattr(os, "fsync", real_fsync)
        assert store.load(job) == {"step": 7}


class TestClusterShutdownDiscipline:
    def test_shutdown_raises_on_zombie_coordinator(self):
        class StuckCluster(LiveCluster):
            def _coordinate(self):
                # A coordinator that ignores the stop signal.
                while True:
                    time.sleep(0.05)

        cluster = StuckCluster(["w1"], shutdown_timeout=0.2)
        cluster.start()
        with pytest.raises(LiveRuntimeError, match="zombie"):
            cluster.shutdown()

    def test_submit_after_shutdown_raises(self):
        cluster = LiveCluster(["w1"])
        cluster.start()
        cluster.shutdown()
        with pytest.raises(LiveRuntimeError, match="shut down"):
            cluster.submit(counting_job(1), owner="a")

    def test_start_reopens_submission(self):
        cluster = LiveCluster(["w1"])
        cluster.start()
        cluster.shutdown()
        cluster.start()
        try:
            job = cluster.submit(counting_job(50), owner="a")
            assert cluster.wait_all(timeout=10.0)
            assert job.result == 50
        finally:
            cluster.shutdown()


class TestVacatedRequeuePosition:
    def test_vacated_job_requeued_at_head(self):
        # Regression: a vacated job must resume before younger
        # submissions, not queue behind them (resume-not-restart).
        cluster = LiveCluster(["w1"])     # never started: queue is inert
        old = cluster.submit(counting_job(10), owner="a")
        young1 = cluster.submit(counting_job(10), owner="a")
        young2 = cluster.submit(counting_job(10), owner="a")
        popped = cluster._pop_job_of("a")
        assert popped is old
        cluster._job_exited(old, "vacated")
        with cluster._lock:
            queue = list(cluster._queue)
        assert queue == [old, young1, young2]


class TestSyntheticOwner:
    def test_schedule_toggles_worker(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        owner = SyntheticOwner(worker, [(0.02, 0.05)])
        owner.start()
        time.sleep(0.04)
        assert worker.owner_active
        owner.join(timeout=2.0)
        assert not worker.owner_active

    def test_stop_releases_worker(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        owner = SyntheticOwner(worker, [(0.0, 60.0)])
        owner.start()
        time.sleep(0.05)
        assert worker.owner_active
        owner.stop()
        owner.join(timeout=2.0)
        assert not worker.owner_active

    def test_negative_schedule_rejected(self):
        worker = LiveWorker("w1", InMemoryCheckpointStore())
        with pytest.raises(LiveRuntimeError):
            SyntheticOwner(worker, [(-1.0, 1.0)])


class TestFileBackedCluster:
    def test_cluster_with_disk_checkpoints(self, tmp_path):
        store = LiveCheckpointStore(root=tmp_path)
        with LiveCluster(["w1", "w2"], store=store,
                         poll_interval=0.01) as cluster:
            job = cluster.submit(
                counting_job(3000, step_sleep=0.0005, checkpoint_every=25),
                owner="ada",
            )
            time.sleep(0.1)
            for worker in cluster.workers.values():
                if worker.current_job() is job:
                    worker.owner_arrived()
            assert cluster.wait_all(timeout=30.0)
        assert job.result == 3000
        # The checkpoint file existed on disk during the run and was
        # cleaned up at completion.
        assert store.size_bytes(job) == 0
