"""Tests for per-job metric aggregation (Table 1 / Figs. 2, 4, 8, 9)."""

import pytest

from repro.core.job import Job
from repro.metrics import jobs as job_metrics
from repro.sim import HOUR


def finished_job(user="A", demand_hours=5.0, wait_hours=0.0,
                 checkpoints=0, support=None, remote=None):
    job = Job(user=user, home="ws-1", demand_seconds=demand_hours * HOUR)
    job.submitted_at = 0.0
    job.completed_at = (demand_hours + wait_hours) * HOUR
    job.checkpoint_count = checkpoints
    job.remote_cpu_seconds = (remote if remote is not None
                              else demand_hours * HOUR)
    for kind, seconds in (support or {}).items():
        job.add_support(kind, seconds)
    job.transition("placing")
    job.transition("running")
    job.transition("completed")
    return job


class TestUserTable:
    def test_single_user(self):
        jobs = [finished_job(demand_hours=2.0), finished_job(demand_hours=4.0)]
        rows, totals = job_metrics.user_table(jobs)
        assert len(rows) == 1
        assert rows[0]["jobs"] == 2
        assert rows[0]["avg_demand_hours"] == pytest.approx(3.0)
        assert rows[0]["job_share"] == 100.0
        assert totals["total_demand_hours"] == pytest.approx(6.0)

    def test_rows_sorted_by_demand(self):
        jobs = [finished_job(user="small", demand_hours=1.0),
                finished_job(user="big", demand_hours=10.0)]
        rows, _totals = job_metrics.user_table(jobs)
        assert [row["user"] for row in rows] == ["big", "small"]

    def test_shares_sum_to_100(self):
        jobs = [finished_job(user=u, demand_hours=d)
                for u, d in (("A", 6.0), ("B", 3.0), ("C", 1.0))]
        rows, _totals = job_metrics.user_table(jobs)
        assert sum(row["job_share"] for row in rows) == pytest.approx(100.0)
        assert sum(row["demand_share"] for row in rows) == pytest.approx(100.0)

    def test_empty_jobs(self):
        rows, totals = job_metrics.user_table([])
        assert rows == []
        assert totals["jobs"] == 0


class TestCdf:
    def test_demand_cdf(self):
        jobs = [finished_job(demand_hours=h) for h in (0.5, 1.5, 2.5, 10.0)]
        cdf = job_metrics.demand_cdf(jobs, [1, 2, 3])
        assert cdf == [0.25, 0.5, 0.75]


class TestPerDemandSeries:
    def test_wait_ratio_buckets(self):
        jobs = [
            finished_job(demand_hours=0.5, wait_hours=0.5),   # ratio 1.0
            finished_job(demand_hours=1.5, wait_hours=0.0),   # ratio 0.0
            finished_job(demand_hours=1.6, wait_hours=1.6),   # ratio 1.0
        ]
        series = job_metrics.wait_ratio_by_demand(jobs, edges=(0, 1, 2))
        assert len(series) == 2
        assert series[0]["value"] == pytest.approx(1.0)
        assert series[1]["value"] == pytest.approx(0.5)
        assert series[1]["jobs"] == 2

    def test_empty_buckets_skipped(self):
        jobs = [finished_job(demand_hours=0.5)]
        series = job_metrics.checkpoint_rate_by_demand(jobs, edges=(0, 1, 2))
        assert len(series) == 1
        assert series[0]["low_hours"] == 0

    def test_checkpoint_rate_values(self):
        jobs = [finished_job(demand_hours=2.0, checkpoints=4)]
        series = job_metrics.checkpoint_rate_by_demand(jobs, edges=(0, 4))
        assert series[0]["value"] == pytest.approx(2.0)

    def test_leverage_series_skips_zero_support(self):
        supported = finished_job(demand_hours=1.0,
                                 support={"placement": 3.6})
        unsupported = finished_job(demand_hours=1.0)
        series = job_metrics.leverage_by_demand(
            [supported, unsupported], edges=(0, 2)
        )
        assert series[0]["jobs"] == 1
        assert series[0]["value"] == pytest.approx(1000.0)


class TestAggregates:
    def test_average_leverage_below(self):
        short = finished_job(demand_hours=1.0, support={"placement": 6.0})
        long_job = finished_job(demand_hours=10.0,
                                support={"placement": 6.0})
        below = job_metrics.average_leverage_below([short, long_job], 2.0)
        assert below == pytest.approx(600.0)

    def test_average_wait_ratio(self):
        jobs = [finished_job(wait_hours=0.0),
                finished_job(demand_hours=1.0, wait_hours=2.0)]
        assert job_metrics.average_wait_ratio(jobs) == pytest.approx(1.0)

    def test_totals(self):
        jobs = [finished_job(demand_hours=2.0,
                             support={"syscall": 1800.0})]
        assert job_metrics.total_remote_cpu_hours(jobs) == pytest.approx(2.0)
        assert job_metrics.total_support_hours(jobs) == pytest.approx(0.5)

    def test_average_image(self):
        jobs = [finished_job(), finished_job()]
        assert job_metrics.average_checkpoint_image_mb(jobs) == \
            pytest.approx(0.5)
