"""Tests for the statistics helpers, incl. hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import stats
from repro.sim import SimulationError


class TestBasics:
    def test_mean(self):
        assert stats.mean([1, 2, 3]) == 2.0

    def test_mean_empty_is_none(self):
        assert stats.mean([]) is None

    def test_median_odd(self):
        assert stats.median([5, 1, 3]) == 3

    def test_median_even(self):
        assert stats.median([1, 2, 3, 4]) == 2.5

    def test_median_empty_is_none(self):
        assert stats.median([]) is None

    def test_quantile_bounds(self):
        values = list(range(11))
        assert stats.quantile(values, 0.0) == 0
        assert stats.quantile(values, 1.0) == 10
        assert stats.quantile(values, 0.5) == 5

    def test_quantile_interpolates(self):
        assert stats.quantile([0, 10], 0.25) == 2.5

    def test_quantile_range_checked(self):
        with pytest.raises(SimulationError):
            stats.quantile([1], 1.5)

    def test_quantile_empty_is_none(self):
        assert stats.quantile([], 0.5) is None

    def test_weighted_mean(self):
        assert stats.weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == 2.5

    def test_weighted_mean_no_weight(self):
        assert stats.weighted_mean([]) is None


class TestCdf:
    def test_simple_cdf(self):
        values = [0.5, 1.5, 2.5, 3.5]
        assert stats.cumulative_distribution(values, [1, 2, 3, 4]) == \
            [0.25, 0.5, 0.75, 1.0]

    def test_empty_values(self):
        assert stats.cumulative_distribution([], [1, 2]) == [0.0, 0.0]

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_and_bounded(self, values):
        grid = [0, 25, 50, 75, 100]
        cdf = stats.cumulative_distribution(values, grid)
        assert all(0.0 <= c <= 1.0 for c in cdf)
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == 1.0


class TestBuckets:
    def test_bucketing(self):
        buckets = stats.bucket_by([0.5, 1.5, 1.7, 9.0], lambda x: x,
                                  [0, 1, 2, 3])
        assert [len(members) for _l, _h, members in buckets] == [1, 2, 0]

    def test_edges_validated(self):
        with pytest.raises(SimulationError):
            stats.bucket_by([], lambda x: x, [3, 1])
        with pytest.raises(SimulationError):
            stats.bucket_by([], lambda x: x, [1])

    @given(st.lists(st.floats(0, 9.999), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_every_in_range_item_lands_in_one_bucket(self, values):
        buckets = stats.bucket_by(values, lambda x: x, list(range(11)))
        total = sum(len(members) for _l, _h, members in buckets)
        assert total == len(values)
