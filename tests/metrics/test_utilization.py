"""Tests for the cluster utilisation monitor."""

import pytest

from repro.machine import OWNER, REMOTE_JOB, SYSCALL, Workstation
from repro.metrics import UtilizationMonitor
from repro.sim import HOUR, Simulation


def make_cluster(sim, n=2):
    stations = [Workstation(sim, f"ws-{i}") for i in range(n)]
    return stations, UtilizationMonitor(stations)


def test_local_series_tracks_owner_time():
    sim = Simulation()
    stations, monitor = make_cluster(sim, n=2)
    stations[0].ledger.start(OWNER)
    sim.schedule(HOUR, lambda: None)
    sim.run()
    stations[0].ledger.stop(OWNER)
    # One of two stations busy for the full first hour -> 50%.
    assert monitor.local_series(1) == [pytest.approx(0.5)]


def test_system_series_adds_remote():
    sim = Simulation()
    stations, monitor = make_cluster(sim, n=2)
    stations[0].ledger.start(OWNER)
    stations[1].ledger.start(REMOTE_JOB)
    sim.schedule(HOUR, lambda: None)
    sim.run()
    for station, cat in zip(stations, (OWNER, REMOTE_JOB)):
        station.ledger.stop(cat)
    assert monitor.system_series(1) == [pytest.approx(1.0)]
    assert monitor.local_series(1) == [pytest.approx(0.5)]


def test_support_not_in_system_series():
    sim = Simulation()
    stations, monitor = make_cluster(sim, n=1)
    stations[0].ledger.add_load(SYSCALL, 0.0, HOUR, 0.5)
    assert monitor.system_series(1) == [0.0]
    assert monitor.support_hours() == pytest.approx(0.5)


def test_scalar_hours():
    sim = Simulation()
    stations, monitor = make_cluster(sim, n=2)
    stations[0].ledger.start(OWNER)
    stations[1].ledger.start(REMOTE_JOB)
    sim.schedule(3 * HOUR, lambda: None)
    sim.run()
    stations[0].ledger.stop(OWNER)
    stations[1].ledger.stop(REMOTE_JOB)
    horizon = 3 * HOUR
    assert monitor.local_hours() == pytest.approx(3.0)
    assert monitor.remote_hours() == pytest.approx(3.0)
    # 2 stations x 3 h = 6 h capacity; 3 h eaten by owners.
    assert monitor.available_hours(horizon) == pytest.approx(3.0)
    assert monitor.average_local_utilization(horizon) == pytest.approx(0.5)


def test_fraction_series_grouping():
    sim = Simulation()
    stations, monitor = make_cluster(sim, n=1)
    stations[0].ledger.add_load(SYSCALL, 0.0, HOUR, 0.2)
    series = monitor.fraction_series(("support",), 1)
    assert series == [pytest.approx(0.2)]
