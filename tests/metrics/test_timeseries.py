"""Tests for hourly accumulators and periodic samplers."""

import pytest

from repro.metrics import HourlyAccumulator, PeriodicSampler
from repro.sim import HOUR, Simulation, SimulationError


class TestHourlyAccumulator:
    def test_interval_within_one_hour(self):
        acc = HourlyAccumulator()
        acc.add_interval(100.0, 400.0)
        assert acc.value(0) == 300.0
        assert acc.value(1) == 0.0

    def test_interval_split_across_hours(self):
        acc = HourlyAccumulator()
        acc.add_interval(0.5 * HOUR, 2.5 * HOUR)
        assert acc.value(0) == pytest.approx(0.5 * HOUR)
        assert acc.value(1) == pytest.approx(HOUR)
        assert acc.value(2) == pytest.approx(0.5 * HOUR)

    def test_weight_scales_contribution(self):
        acc = HourlyAccumulator()
        acc.add_interval(0.0, HOUR, weight=0.25)
        assert acc.value(0) == pytest.approx(0.25 * HOUR)

    def test_zero_weight_is_noop(self):
        acc = HourlyAccumulator()
        acc.add_interval(0.0, HOUR, weight=0.0)
        assert acc.total() == 0.0

    def test_inverted_interval_rejected(self):
        with pytest.raises(SimulationError):
            HourlyAccumulator().add_interval(10.0, 5.0)

    def test_exact_hour_boundary(self):
        acc = HourlyAccumulator()
        acc.add_interval(HOUR, 2 * HOUR)
        assert acc.value(0) == 0.0
        assert acc.value(1) == pytest.approx(HOUR)
        assert acc.value(2) == 0.0

    def test_series_dense(self):
        acc = HourlyAccumulator()
        acc.add_interval(0.0, 600.0)
        acc.add_interval(2 * HOUR, 2 * HOUR + 60.0)
        assert acc.series(3) == [600.0, 0.0, 60.0]

    def test_series_with_start_offset(self):
        acc = HourlyAccumulator()
        acc.add_interval(5 * HOUR, 5 * HOUR + 30.0)
        assert acc.series(2, start_hour=5) == [30.0, 0.0]

    def test_total_sums_everything(self):
        acc = HourlyAccumulator()
        acc.add_interval(0.0, 10 * HOUR, weight=0.5)
        assert acc.total() == pytest.approx(5 * HOUR)


class TestPeriodicSampler:
    def test_samples_on_cadence(self):
        sim = Simulation()
        clock = {"n": 0}

        def probe():
            clock["n"] += 1
            return clock["n"]

        sampler = PeriodicSampler(sim, probe, interval=10.0)
        sampler.start()
        sim.run(until=35.0)
        assert sampler.samples == [(10.0, 1), (20.0, 2), (30.0, 3)]
        assert sampler.values() == [1, 2, 3]
        assert sampler.times() == [10.0, 20.0, 30.0]

    def test_window_selects_half_open_range(self):
        sim = Simulation()
        sampler = PeriodicSampler(sim, lambda: 7, interval=10.0)
        sampler.start()
        sim.run(until=50.0)
        assert sampler.window(20.0, 40.0) == [(20.0, 7), (30.0, 7)]

    def test_start_is_idempotent(self):
        sim = Simulation()
        sampler = PeriodicSampler(sim, lambda: 1, interval=10.0)
        sampler.start()
        sampler.start()
        sim.run(until=25.0)
        assert len(sampler.samples) == 2

    def test_interval_validated(self):
        with pytest.raises(SimulationError):
            PeriodicSampler(Simulation(), lambda: 0, interval=0)
