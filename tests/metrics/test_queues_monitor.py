"""Tests for the queue-length monitor."""

import pytest

from repro.core import CondorSystem, Job, StationSpec
from repro.machine import AlwaysActiveOwner
from repro.metrics import QueueLengthMonitor
from repro.sim import HOUR, Simulation


def test_monitor_tracks_total_light_and_heavy():
    sim = Simulation()
    # No hosts: jobs just sit in the queue, so counts are deterministic.
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner())]
    system = CondorSystem(sim, specs)
    monitor = QueueLengthMonitor(sim, system, light_users={"B"},
                                 interval=HOUR)
    system.start()
    monitor.start()
    for user, count in (("A", 3), ("B", 2)):
        for _ in range(count):
            system.submit(Job(user=user, home="home",
                              demand_seconds=10 * HOUR))
    sim.run(until=3.5 * HOUR)
    assert monitor.total.values() == [5, 5, 5]
    assert monitor.light.values() == [2, 2, 2]
    assert monitor.heavy_values() == [3, 3, 3]


def test_window_extraction():
    sim = Simulation()
    specs = [StationSpec("home", owner_model=AlwaysActiveOwner())]
    system = CondorSystem(sim, specs)
    monitor = QueueLengthMonitor(sim, system, light_users=set(),
                                 interval=HOUR)
    system.start()
    monitor.start()
    sim.run(until=10 * HOUR)
    window = monitor.total.window(2 * HOUR, 5 * HOUR)
    assert [t for t, _v in window] == [2 * HOUR, 3 * HOUR, 4 * HOUR]
