"""Tests for per-station accounting breakdown."""

import pytest

from repro.machine import OWNER, REMOTE_JOB, SYSCALL, Workstation
from repro.metrics import render_station_breakdown, station_breakdown, station_row
from repro.sim import HOUR, Simulation


def busy_station(sim, name, owner_h=2.0, donated_h=5.0):
    station = Workstation(sim, name)
    ledger = station.ledger
    ledger.add_load(SYSCALL, 0.0, HOUR, 0.5)
    ledger.start(OWNER)
    sim.run(until=sim.now + owner_h * HOUR)
    ledger.stop(OWNER)
    ledger.start(REMOTE_JOB)
    sim.run(until=sim.now + donated_h * HOUR)
    ledger.stop(REMOTE_JOB)
    return station


def test_station_row_fields():
    sim = Simulation()
    station = busy_station(sim, "ws-1")
    row = station_row(station, 10 * HOUR)
    assert row["name"] == "ws-1"
    assert row["owner_hours"] == pytest.approx(2.0)
    assert row["donated_hours"] == pytest.approx(5.0)
    assert row["support_hours"] == pytest.approx(0.5)
    assert row["owner_fraction"] == pytest.approx(0.2)
    assert row["idle_hours"] == pytest.approx(3.0)


def test_breakdown_sorted_by_donated():
    sim = Simulation()
    small = busy_station(sim, "small", donated_h=1.0)
    sim2 = Simulation()
    big = busy_station(sim2, "big", donated_h=8.0)
    rows = station_breakdown([small, big], 10 * HOUR)
    assert [row["name"] for row in rows] == ["big", "small"]


def test_render_contains_totals():
    sim = Simulation()
    station = busy_station(sim, "ws-1")
    text = render_station_breakdown([station], 10 * HOUR)
    assert "TOTAL" in text
    assert "ws-1" in text


def test_idle_never_negative():
    sim = Simulation()
    station = busy_station(sim, "ws-1", owner_h=6.0, donated_h=6.0)
    row = station_row(station, 10 * HOUR)   # overcommitted horizon
    assert row["idle_hours"] == 0.0
