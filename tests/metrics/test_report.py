"""Tests for plain-text report rendering."""

from repro.metrics.report import (
    format_cell,
    render_comparison,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_large_floats_grouped(self):
        assert format_cell(12438.0) == "12,438"

    def test_small_floats_two_decimals(self):
        assert format_cell(0.25) == "0.25"

    def test_mid_floats_one_decimal(self):
        assert format_cell(42.42) == "42.4"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_cell("A") == "A"


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["user", "jobs"], [("A", 690), ("B", 138)],
                            title="Table 1")
        assert "Table 1" in text
        assert "user" in text and "jobs" in text
        assert "690" in text and "B" in text

    def test_columns_aligned(self):
        text = render_table(["a", "b"], [("x", 1)])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) <= 2  # header+sep+row


class TestRenderComparison:
    def test_ratio_computed(self):
        text = render_comparison([("consumed hours", 4771, 4369.0)])
        assert "0.92" in text

    def test_missing_paper_value(self):
        text = render_comparison([("extra metric", None, 5.0)])
        assert "-" in text

    def test_zero_paper_value_no_division(self):
        text = render_comparison([("zero target", 0.0, 5.0)])
        assert "zero target" in text


class TestRenderSeries:
    def test_bars_scale_with_values(self):
        text = render_series([1, 2], [1.0, 2.0], title="demo")
        lines = text.splitlines()
        bar1 = lines[-2].count("#")
        bar2 = lines[-1].count("#")
        assert bar2 == 2 * bar1

    def test_none_values_rendered_as_dash(self):
        text = render_series([1], [None])
        assert "-" in text

    def test_all_zero_series(self):
        text = render_series([1, 2], [0.0, 0.0])
        assert "#" not in text
